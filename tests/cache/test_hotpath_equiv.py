"""Equivalence tests for the hot-path rewrites.

The simulator's inner loop was rewritten for speed (shift/mask set
indexing, listener-gated event emission, devirtualized replacement
touches).  None of those rewrites may change semantics; these tests
pin the equivalences:

* shift/mask set indexing == the textbook div/mod formula, across
  geometries and address patterns (including the negative addresses
  Python's arbitrary-precision ints allow);
* a cache that never had a listener ends a workload byte-identical
  (counters + contents + replacement order) to one whose listener
  subscribed and then unsubscribed — the ``has_listeners`` fast path
  must not leak into simulation state;
* ``unsubscribe`` of a never-subscribed listener is a cheap no-op;
* ``MachineConfig.replacement_seed`` reaches every level and makes
  ``replacement="random"`` runs reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.events import CacheListener
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.machine import Machine, MachineConfig

# ---------------------------------------------------------------------------
# shift/mask set indexing == div/mod
# ---------------------------------------------------------------------------

GEOMETRIES = [
    # (size_bytes, assoc, line_size)
    (32 * 1024, 8, 64),  # Table-1 L1d
    (256 * 1024, 8, 64),  # Table-1 L2
    (8 * 1024 * 1024, 16, 64),  # Table-1 LLC
    (4 * 1024, 1, 64),  # direct-mapped
    (4 * 1024, 64, 64),  # fully associative (1 set)
    (2 * 1024, 2, 32),  # small line
    (16 * 1024, 4, 128),  # big line
]


@pytest.mark.parametrize("size_bytes,assoc,line_size", GEOMETRIES)
def test_set_index_matches_divmod(size_bytes, assoc, line_size):
    cache = SetAssociativeCache(
        "C", size_bytes, assoc, latency=1, line_size=line_size
    )
    rng = random.Random(7)
    addrs = [rng.randrange(0, 1 << 48) for _ in range(2000)]
    # stride patterns that walk set boundaries exactly
    addrs += [i * line_size for i in range(4 * cache.num_sets)]
    addrs += [i * line_size * cache.num_sets for i in range(64)]
    for addr in addrs:
        line_addr = (addr // line_size) * line_size
        expect = (line_addr // line_size) % cache.num_sets
        assert cache.set_index(line_addr) == expect


def test_set_index_negative_addresses():
    """Python's ``>>``/``&`` agree with floor div/mod below zero too."""
    cache = SetAssociativeCache("C", 32 * 1024, 8, latency=1)
    for line_addr in (-64, -128, -(1 << 20), -(1 << 20) - 64):
        expect = (line_addr // 64) % cache.num_sets
        assert cache.set_index(line_addr) == expect


def test_shift_mask_fast_path_is_active():
    """Power-of-two line sizes must take the shift/mask path."""
    cache = SetAssociativeCache("C", 32 * 1024, 8, latency=1)
    assert cache._line_shift == 6
    assert cache._set_mask == cache.num_sets - 1


# ---------------------------------------------------------------------------
# listener-free fast path leaves no trace in simulation state
# ---------------------------------------------------------------------------


class _Recorder(CacheListener):
    def __init__(self):
        self.events = []

    def on_hit(self, cache_name, line_addr, dirty, lru_updated=True):
        self.events.append(("hit", line_addr, dirty, lru_updated))

    def on_fill(self, cache_name, line_addr, dirty):
        self.events.append(("fill", line_addr, dirty))

    def on_evict(self, cache_name, line_addr, dirty):
        self.events.append(("evict", line_addr, dirty))


def _drive(cache: SetAssociativeCache, seed: int = 3) -> None:
    """A mixed access pattern with hits, misses, evictions, stores."""
    rng = random.Random(seed)
    for _ in range(4000):
        line_addr = rng.randrange(0, 1024) * 64
        if cache.access(line_addr) is None:
            cache.fill(line_addr, dirty=rng.random() < 0.3)
        if rng.random() < 0.1:
            cache.set_dirty(line_addr)
        if rng.random() < 0.02:
            cache.invalidate(rng.randrange(0, 1024) * 64)


def _state(cache: SetAssociativeCache):
    return (
        cache.stats.hits,
        cache.stats.misses,
        cache.stats.fills,
        cache.stats.evictions,
        cache.stats.dirty_evictions,
        cache.stats.invalidations,
        dict(cache.stats.set_accesses),
        cache.resident_lines(),
        [cache.replacement_state(s) for s in range(cache.num_sets)],
        [sorted(cache.set_contents(s)) for s in range(cache.num_sets)],
    )


def test_no_listener_identical_to_subscribed_then_unsubscribed():
    quiet = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    churned = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    rec = _Recorder()
    churned.events.subscribe(rec)
    churned.events.unsubscribe(rec)
    assert not churned.events.has_listeners

    _drive(quiet)
    _drive(churned)
    assert rec.events == []  # unsubscribed before any traffic
    assert _state(quiet) == _state(churned)


def test_subscribed_listener_still_sees_everything():
    """The gating flag must not silence an actually-subscribed listener."""
    cache = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    rec = _Recorder()
    cache.events.subscribe(rec)
    _drive(cache)
    kinds = {kind for kind, *_ in rec.events}
    assert {"hit", "fill", "evict"} <= kinds
    # and the event counts match the stats the cache kept
    assert sum(1 for k, *_ in rec.events if k == "fill") == cache.stats.fills
    assert (
        sum(1 for k, *_ in rec.events if k == "evict")
        == cache.stats.evictions
    )


def test_unsubscribe_never_subscribed_is_noop():
    cache = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    stranger = _Recorder()
    cache.events.unsubscribe(stranger)  # must not raise
    assert not cache.events.has_listeners
    # and does not disturb real subscriptions
    rec = _Recorder()
    cache.events.subscribe(rec)
    cache.events.unsubscribe(stranger)
    assert cache.events.has_listeners
    cache.fill(0)
    assert rec.events == [("fill", 0, False)]


def test_unsubscribe_removes_by_identity_not_equality():
    """Regression: ``unsubscribe`` used ``list.remove`` (``==``), so a
    listener overriding ``__eq__`` could evict the *wrong* subscriber
    while its own entry survived — out of sync with the ``id()``-based
    membership set."""

    class EqualRecorder(_Recorder):
        def __eq__(self, other):  # every instance compares equal
            return isinstance(other, EqualRecorder)

        def __hash__(self):
            return 0

    cache = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    first, second = EqualRecorder(), EqualRecorder()
    cache.events.subscribe(first)
    cache.events.subscribe(second)
    cache.events.unsubscribe(second)  # must remove *second*, not first
    cache.fill(0)
    assert first.events == [("fill", 0, False)]
    assert second.events == []
    # and the survivor can still be unsubscribed cleanly
    cache.events.unsubscribe(first)
    assert not cache.events.has_listeners
    cache.fill(64)
    assert first.events == [("fill", 0, False)]


def test_double_subscribe_is_idempotent():
    cache = SetAssociativeCache("A", 8 * 1024, 4, latency=1)
    rec = _Recorder()
    cache.events.subscribe(rec)
    cache.events.subscribe(rec)
    cache.fill(0)
    assert rec.events == [("fill", 0, False)]  # exactly one delivery
    cache.events.unsubscribe(rec)
    assert not cache.events.has_listeners


# ---------------------------------------------------------------------------
# replacement_seed threading
# ---------------------------------------------------------------------------


def _random_machine_trace(seed: int):
    machine = Machine(
        MachineConfig(replacement="random", replacement_seed=seed)
    )
    # 4x the 64 KiB L1d so random victim choice actually fires
    span = 256 * 1024
    base = machine.allocator.alloc(span, "buf")
    rng = random.Random(11)
    for _ in range(6000):
        machine.load_word(base + rng.randrange(0, span // 8) * 8)
    l1d = machine.hierarchy.levels[0]
    assert l1d.stats.evictions > 0
    return machine.snapshot(), tuple(l1d.resident_lines())


def test_replacement_seed_reaches_every_level():
    machine = Machine(MachineConfig(replacement_seed=42))
    seeds = [c.replacement_seed for c in machine.hierarchy.levels]
    assert seeds[0] == 42
    # distinct per level so levels don't share RNG streams
    assert len(set(seeds)) == len(seeds)


def test_random_replacement_reproducible_across_machines():
    assert _random_machine_trace(5) == _random_machine_trace(5)


def test_random_replacement_seed_changes_trace():
    assert _random_machine_trace(5) != _random_machine_trace(6)
