"""Regression tests for hot-path event gating.

The caches check ``EventBus.has_listeners`` before building/emitting
events, and the BIA subscribes to its monitored cache *lazily* (only
while it holds live entries).  These are pure optimizations: the flag
must track membership exactly through mid-run subscribe/unsubscribe,
survive :meth:`Machine.save_state` / ``restore_state`` / ``fork``, and
never change simulated counters.
"""

from repro.attacks.observer import ObservableTraceRecorder
from repro.cache.events import CacheListener, EventBus
from repro.core.machine import Machine, MachineConfig


def _touch(machine, base, n=64, stride=64):
    for i in range(n):
        machine.load_word(base + stride * i)
        machine.store_word(base + stride * i, i)


class TestHasListenersFlag:
    def test_tracks_subscribe_unsubscribe(self):
        bus = EventBus("L1D")
        a, b = CacheListener(), CacheListener()
        assert not bus.has_listeners
        bus.subscribe(a)
        assert bus.has_listeners
        bus.subscribe(b)
        bus.unsubscribe(a)
        assert bus.has_listeners  # b still there
        bus.unsubscribe(b)
        assert not bus.has_listeners
        bus.unsubscribe(b)  # double-unsubscribe stays consistent
        assert not bus.has_listeners

    def test_mid_run_subscribe_sees_only_later_events(self):
        m = Machine(MachineConfig())
        base = m.allocator.alloc(8 * 1024, "a")
        _touch(m, base, 32)  # un-observed prefix
        l1d = m.hierarchy.level("L1D")
        rec = ObservableTraceRecorder()
        rec.attach(l1d)
        assert l1d.events.has_listeners
        _touch(m, base, 32)
        observed = len(rec.events)
        assert observed > 0
        rec.detach()
        assert not l1d.events.has_listeners
        _touch(m, base, 32)
        assert len(rec.events) == observed  # nothing after unsubscribe

    def test_gating_never_changes_counters(self):
        ma, mb = Machine(MachineConfig()), Machine(MachineConfig())
        base = None
        for m in (ma, mb):
            base = m.allocator.alloc(8 * 1024, "a")
        rec = ObservableTraceRecorder()
        for name in ("L1D", "L2", "LLC"):
            rec.attach(ma.hierarchy.level(name))
        _touch(ma, base, 96)
        _touch(mb, base, 96)
        assert ma.snapshot() == mb.snapshot()
        for name in ("L1D", "L2", "LLC"):
            sa = ma.hierarchy.level(name).stats
            sb = mb.hierarchy.level(name).stats
            assert (sa.hits, sa.misses, sa.fills, sa.evictions) == (
                sb.hits, sb.misses, sb.fills, sb.evictions
            )


class TestGatingAcrossForkRestore:
    def test_restore_preserves_external_subscription(self):
        m = Machine(MachineConfig())
        base = m.allocator.alloc(4 * 1024, "a")
        l1d = m.hierarchy.level("L1D")
        rec = ObservableTraceRecorder()
        rec.attach(l1d)
        snap = m.save_state()
        _touch(m, base, 16)
        assert rec.events
        m.restore_state(snap)
        # observer wiring is construction-time plumbing: still attached
        assert l1d.events.has_listeners
        before = len(rec.events)
        _touch(m, base, 16)
        assert len(rec.events) > before

    def test_fork_does_not_carry_external_listeners(self):
        m = Machine(MachineConfig())
        base = m.allocator.alloc(4 * 1024, "a")
        rec = ObservableTraceRecorder()
        rec.attach(m.hierarchy.level("L1D"))
        _touch(m, base, 8)
        clone = m.fork()
        assert not clone.hierarchy.level("L1D").events.has_listeners
        seen = len(rec.events)
        _touch(clone, base, 8)
        assert len(rec.events) == seen  # clone activity is invisible
        assert m.hierarchy.level("L1D").events.has_listeners  # parent keeps it


class TestLazyBIASubscription:
    """The BIA joins its monitored bus only while it holds live entries."""

    def test_idle_bia_is_off_the_bus(self):
        m = Machine(MachineConfig())
        bus = m.hierarchy.level(m.config.bia_level).events
        # no CT op has allocated an entry: insecure/software-CT runs
        # on a BIA machine pay zero fan-out cost
        assert not bus.has_listeners
        base = m.allocator.alloc(4 * 1024, "a")
        _touch(m, base, 16)
        assert not bus.has_listeners

    def test_first_allocation_subscribes(self):
        m = Machine(MachineConfig())
        bus = m.hierarchy.level(m.config.bia_level).events
        base = m.allocator.alloc(4 * 1024, "a")
        m.ctops.ctload(base)
        assert m.bia._live_entries > 0
        assert bus.has_listeners

    def test_restore_to_pristine_unsubscribes(self):
        m = Machine(MachineConfig())
        bus = m.hierarchy.level(m.config.bia_level).events
        base = m.allocator.alloc(4 * 1024, "a")
        pristine = m.save_state()
        m.ctops.ctload(base)
        assert bus.has_listeners
        warmed = m.save_state()
        m.restore_state(pristine)
        assert not bus.has_listeners  # empty restored table leaves the bus
        m.restore_state(warmed)
        assert bus.has_listeners  # live restored table rejoins it
        # and a fresh allocation after a pristine restore re-subscribes
        m.restore_state(pristine)
        m.ctops.ctload(base)
        assert bus.has_listeners

    def test_lazy_subscription_is_observationally_silent(self):
        ma, mb = Machine(MachineConfig()), Machine(MachineConfig())
        base = None
        for m in (ma, mb):
            base = m.allocator.alloc(8 * 1024, "a")
        # ma: plain traffic then CT ops; mb: same ops, but force the
        # BIA onto the bus from the start (as the eager design did)
        mb.bia._live_entries += 1
        mb.bia._sync_subscription()
        mb.bia._live_entries -= 1
        _touch(ma, base, 32)
        _touch(mb, base, 32)
        ma.ctops.ctload(base)
        mb.ctops.ctload(base)
        _touch(ma, base, 32)
        _touch(mb, base, 32)
        assert ma.snapshot() == mb.snapshot()
        assert ma.bia.stats == mb.bia.stats
