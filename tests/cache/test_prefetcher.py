"""Next-line prefetcher (the Fig. 6(d) interference source)."""

from repro import params
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.prefetcher import NextLinePrefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.memory.dram import DRAM

LINE = params.LINE_SIZE


def build(enabled=True, degree=1):
    l1 = SetAssociativeCache("L1D", 4096, 2, 2)
    pf = NextLinePrefetcher(enabled=enabled, degree=degree)
    return CacheHierarchy([l1], DRAM(), pf), pf


class TestPrefetcher:
    def test_demand_miss_prefetches_next_line(self):
        h, pf = build()
        h.read_line(0x1000)
        assert 0x1000 + LINE in h.levels[0]
        assert pf.issued == 1

    def test_prefetched_lines_are_clean(self):
        h, _ = build()
        h.read_line(0x1000)
        assert not h.levels[0].is_dirty(0x1000 + LINE)

    def test_hit_does_not_prefetch(self):
        h, pf = build()
        h.read_line(0x1000)
        issued = pf.issued
        h.read_line(0x1000)  # hit
        assert pf.issued == issued

    def test_prefetch_does_not_cascade(self):
        h, pf = build()
        h.read_line(0x1000)
        # the prefetch of 0x1040 missed in DRAM but must not trigger
        # a prefetch of 0x1080
        assert 0x1000 + 2 * LINE not in h.levels[0]

    def test_disabled(self):
        h, pf = build(enabled=False)
        h.read_line(0x1000)
        assert pf.issued == 0
        assert 0x1000 + LINE not in h.levels[0]

    def test_degree(self):
        h, pf = build(degree=3)
        h.read_line(0x1000)
        for i in (1, 2, 3):
            assert 0x1000 + i * LINE in h.levels[0]

    def test_skips_already_resident(self):
        h, pf = build()
        h.read_line(0x1000)          # prefetches 0x1040
        h.read_line(0x1000 + LINE)   # hit? no - it was prefetched, so hit
        issued = pf.issued
        h.read_line(0x2000)
        assert pf.issued == issued + 1
