"""Multi-level hierarchy: fills, latency accounting, write-backs, bypass."""

import pytest

from repro import params
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.memory.dram import DRAM

LINE = params.LINE_SIZE


def build(l1_kw=None, l2_kw=None, dram_latency=200):
    l1 = SetAssociativeCache("L1D", 4096, 2, 2, **(l1_kw or {}))
    l2 = SetAssociativeCache("L2", 16 * 1024, 4, 15, **(l2_kw or {}))
    return CacheHierarchy([l1, l2], DRAM(latency=dram_latency))


class TestReadPath:
    def test_cold_miss_fills_all_levels(self):
        h = build()
        result = h.read_line(0x1000)
        assert result.hit_level is None
        assert result.latency == 2 + 15 + 200
        assert h.where(0x1000) == ["L1D", "L2"]

    def test_l1_hit_latency(self):
        h = build()
        h.read_line(0x1000)
        result = h.read_line(0x1000)
        assert result.hit_level == "L1D"
        assert result.latency == 2

    def test_l2_hit_refills_l1(self):
        h = build()
        h.read_line(0x1000)
        h.levels[0].invalidate(0x1000)
        result = h.read_line(0x1000)
        assert result.hit_level == "L2"
        assert result.latency == 2 + 15
        assert 0x1000 in h.levels[0]

    def test_dram_counted_once_per_cold_miss(self):
        h = build()
        h.read_line(0x1000)
        h.read_line(0x1000)
        assert h.dram.stats.reads == 1


class TestWritePath:
    def test_write_dirties_start_level_only(self):
        h = build()
        h.write_line(0x1000)
        assert h.levels[0].is_dirty(0x1000)
        assert not h.levels[1].is_dirty(0x1000)

    def test_write_allocate_on_miss(self):
        h = build()
        result = h.write_line(0x1000)
        assert result.hit_level is None
        assert 0x1000 in h.levels[0]


class TestWriteBack:
    def test_dirty_victim_lands_in_l2(self):
        h = build()
        conflicts = [i * 32 * LINE for i in range(3)]  # same L1 set
        h.write_line(conflicts[0])
        h.read_line(conflicts[1])
        h.read_line(conflicts[2])  # evicts dirty conflicts[0] from L1
        assert conflicts[0] not in h.levels[0]
        assert h.levels[1].is_dirty(conflicts[0])
        assert h.dram.stats.writes == 0

    def test_dirty_victim_falls_to_dram_when_l2_lost_it(self):
        h = build()
        conflicts = [i * 32 * LINE for i in range(3)]
        h.write_line(conflicts[0])
        h.levels[1].invalidate(conflicts[0])  # L2 no longer has it
        h.read_line(conflicts[1])
        h.read_line(conflicts[2])
        assert h.dram.stats.writes == 1


class TestFlushAndEvict:
    def test_flush_invalidates_everywhere(self):
        h = build()
        h.write_line(0x1000)
        latency = h.flush_line(0x1000)
        assert h.where(0x1000) == []
        assert latency == 200  # dirty write-back
        assert h.dram.stats.writes == 1

    def test_flush_clean_is_free(self):
        h = build()
        h.read_line(0x1000)
        assert h.flush_line(0x1000) == 0

    def test_targeted_evict(self):
        h = build()
        h.read_line(0x1000)
        assert h.evict_line_from("L1D", 0x1000)
        assert h.where(0x1000) == ["L2"]

    def test_targeted_evict_absent(self):
        h = build()
        assert not h.evict_line_from("L1D", 0x1000)

    def test_targeted_evict_dirty_writes_back(self):
        h = build()
        h.write_line(0x1000)
        h.evict_line_from("L1D", 0x1000)
        assert h.levels[1].is_dirty(0x1000)


class TestBypass:
    def test_start_level_skips_l1(self):
        h = build()
        result = h.read_line(0x1000, start_level=1)
        assert 0x1000 not in h.levels[0]
        assert 0x1000 in h.levels[1]
        assert result.latency == 15 + 200

    def test_uncached_read_changes_nothing(self):
        h = build()
        result = h.read_line_uncached(0x1000)
        assert result.latency == 200
        assert h.where(0x1000) == []
        assert h.dram.stats.reads == 1

    def test_uncached_write_changes_nothing(self):
        h = build()
        h.write_line_uncached(0x1000)
        assert h.where(0x1000) == []
        assert h.dram.stats.writes == 1


class TestConfig:
    def test_duplicate_names_rejected(self):
        l1 = SetAssociativeCache("X", 4096, 2, 2)
        l2 = SetAssociativeCache("X", 4096, 2, 2)
        with pytest.raises(ConfigurationError):
            CacheHierarchy([l1, l2], DRAM())

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([], DRAM())

    def test_level_lookup(self):
        h = build()
        assert h.level("L2").name == "L2"
        with pytest.raises(ConfigurationError):
            h.level("LLC")

    def test_reset_stats(self):
        h = build()
        h.read_line(0x1000)
        h.reset_stats()
        assert h.levels[0].stats.accesses == 0
        assert h.dram.stats.accesses == 0


class TestEvictResultLatency:
    """Targeted evictions report their dirty-write-back latency."""

    def test_result_truthiness_matches_presence(self):
        h = build()
        h.read_line(0x1000)
        hit = h.evict_line_from("L1D", 0x1000)
        miss = h.evict_line_from("L1D", 0x2000)
        assert bool(hit) and not bool(miss)
        assert miss.latency == 0

    def test_clean_evict_costs_nothing(self):
        h = build()
        h.read_line(0x1000)
        assert h.evict_line_from("L1D", 0x1000).latency == 0

    def test_dirty_evict_absorbed_by_lower_level_costs_nothing(self):
        h = build()
        h.write_line(0x1000)  # dirty in L1D, clean copy in L2
        result = h.evict_line_from("L1D", 0x1000)
        assert result and result.latency == 0  # write-back hit the L2
        assert h.levels[1].is_dirty(0x1000)

    def test_dirty_evict_with_no_lower_copy_pays_dram_write(self):
        h = build()
        h.write_line(0x1000)
        h.levels[1].invalidate(0x1000)  # L2 no longer holds the line
        writes_before = h.dram.stats.writes
        result = h.evict_line_from("L1D", 0x1000)
        assert result
        assert result.latency == 200  # the DRAM write-back
        assert h.dram.stats.writes == writes_before + 1

    def test_dirty_evict_from_last_level_pays_dram_write(self):
        h = build()
        h.write_line(0x1000)
        h.levels[0].invalidate(0x1000)
        h.levels[1].set_dirty(0x1000)  # dirty now lives in the L2
        assert h.evict_line_from("L2", 0x1000).latency == 200
