"""Single-level set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.cache.events import CacheListener
from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigurationError

LINE = params.LINE_SIZE


def small_cache(**kw):
    defaults = dict(name="T", size_bytes=4096, assoc=2, latency=2)
    defaults.update(kw)
    return SetAssociativeCache(**defaults)


class _Recorder(CacheListener):
    def __init__(self):
        self.log = []

    def on_hit(self, c, a, d, lru_updated=True):
        self.log.append(("hit", a, lru_updated))

    def on_fill(self, c, a, d):
        self.log.append(("fill", a, d))

    def on_evict(self, c, a, d):
        self.log.append(("evict", a, d))

    def on_invalidate(self, c, a):
        self.log.append(("inval", a))

    def on_dirty(self, c, a):
        self.log.append(("dirty", a))

    def on_clean(self, c, a):
        self.log.append(("clean", a))


class TestGeometry:
    def test_set_count(self):
        cache = small_cache()  # 4096 / (2 * 64) = 32 sets
        assert cache.num_sets == 32

    def test_set_index_wraps(self):
        cache = small_cache()
        assert cache.set_index(0) == 0
        assert cache.set_index(32 * LINE) == 0
        assert cache.set_index(LINE) == 1

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            small_cache(size_bytes=1000)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            small_cache(size_bytes=64 * 2 * 3)  # 3 sets

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ConfigurationError):
            small_cache(latency=0)


class TestAccess:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000) is None
        cache.fill(0x1000)
        line = cache.access(0x1000)
        assert line is not None and line.line_addr == 0x1000
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_contains(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert 0x1000 in cache
        assert 0x2000 not in cache

    def test_lookup_is_pure(self):
        cache = small_cache()
        cache.fill(0x1000)
        hits, misses = cache.stats.hits, cache.stats.misses
        assert cache.lookup(0x1000) is not None
        assert cache.lookup(0x9000) is None
        assert (cache.stats.hits, cache.stats.misses) == (hits, misses)

    def test_per_set_access_counting(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x1000, observable=False)
        idx = cache.set_index(0x1000)
        assert cache.stats.set_accesses[idx] == 2


class TestFillEvict:
    def test_capacity_eviction_lru(self):
        cache = small_cache()  # 2-way
        conflict = 32 * LINE  # same set as 0
        cache.fill(0)
        cache.fill(conflict)
        cache.access(0)  # 0 now MRU
        victim = cache.fill(2 * conflict)
        assert victim is not None and victim.line_addr == conflict

    def test_refill_does_not_evict(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None
        assert cache.stats.fills == 1

    def test_refill_can_upgrade_dirty(self):
        cache = small_cache()
        cache.fill(0x1000, dirty=False)
        cache.fill(0x1000, dirty=True)
        assert cache.is_dirty(0x1000)

    def test_dirty_eviction_counted(self):
        cache = small_cache()
        conflict = 32 * LINE
        cache.fill(0, dirty=True)
        cache.fill(conflict)
        cache.fill(2 * conflict)
        assert cache.stats.dirty_evictions == 1


class TestDirty:
    def test_set_dirty_requires_residency(self):
        cache = small_cache()
        assert not cache.set_dirty(0x1000)
        cache.fill(0x1000)
        assert cache.set_dirty(0x1000)
        assert cache.is_dirty(0x1000)

    def test_clean(self):
        cache = small_cache()
        cache.fill(0x1000, dirty=True)
        assert cache.clean(0x1000)
        assert not cache.is_dirty(0x1000)
        assert not cache.clean(0x1000)  # already clean


class TestInvalidate:
    def test_invalidate_removes(self):
        cache = small_cache()
        cache.fill(0x1000)
        removed = cache.invalidate(0x1000)
        assert removed.line_addr == 0x1000
        assert 0x1000 not in cache

    def test_invalidate_absent_is_noop(self):
        cache = small_cache()
        assert cache.invalidate(0x1000) is None

    def test_invalidated_way_reused_first(self):
        cache = small_cache()
        conflict = 32 * LINE
        cache.fill(0)
        cache.fill(conflict)
        cache.invalidate(0)
        victim = cache.fill(2 * conflict)
        assert victim is None  # reused the empty way, no eviction


class TestEvents:
    def test_event_sequence(self):
        cache = small_cache()
        rec = _Recorder()
        cache.events.subscribe(rec)
        cache.fill(0x1000)
        cache.access(0x1000)
        cache.set_dirty(0x1000)
        cache.invalidate(0x1000)
        kinds = [e[0] for e in rec.log]
        assert kinds == ["fill", "hit", "dirty", "inval"]

    def test_suppressed_hit_flagged(self):
        cache = small_cache()
        rec = _Recorder()
        cache.events.subscribe(rec)
        cache.fill(0x1000)
        cache.access(0x1000, update_replacement=False)
        assert ("hit", 0x1000, False) in rec.log

    def test_unsubscribe(self):
        cache = small_cache()
        rec = _Recorder()
        cache.events.subscribe(rec)
        cache.events.unsubscribe(rec)
        cache.fill(0x1000)
        assert not rec.log


class TestLRUSuppression:
    def test_suppressed_hit_does_not_refresh(self):
        """The Sec. 3.2 rule: secret accesses must not move LRU state."""
        cache = small_cache()
        conflict = 32 * LINE
        cache.fill(0)
        cache.fill(conflict)  # LRU order: 0 older
        cache.access(0, update_replacement=False)
        victim = cache.fill(2 * conflict)
        assert victim.line_addr == 0  # 0 still the LRU victim

    def test_replacement_state_exposed(self):
        cache = small_cache()
        cache.fill(0)
        cache.fill(32 * LINE)
        cache.access(0)
        assert cache.replacement_state(0) == (0, 32 * LINE)


class TestResidency:
    def test_resident_lines_sorted(self):
        cache = small_cache()
        cache.fill(0x2000)
        cache.fill(0x1000)
        assert cache.resident_lines() == [0x1000, 0x2000]

    def test_set_contents(self):
        cache = small_cache()
        cache.fill(0x1000, dirty=True)
        assert cache.set_contents(cache.set_index(0x1000)) == [(0x1000, True)]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, line_indices):
        cache = small_cache()  # 64 lines capacity
        for idx in line_indices:
            if cache.access(idx * LINE) is None:
                cache.fill(idx * LINE)
        assert len(cache.resident_lines()) <= 64
        # every resident line is one we touched
        touched = {idx * LINE for idx in line_indices}
        assert set(cache.resident_lines()) <= touched
