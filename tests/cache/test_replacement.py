"""Replacement policies, including an LRU reference-model property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
    policy_names,
)
from repro.errors import ConfigurationError


class TestLRU:
    def test_victim_prefers_invalid_ways(self):
        lru = LRUPolicy(4)
        lru.on_fill(0)
        lru.on_fill(1)
        assert lru.victim() in (2, 3)

    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_access(0)
        assert lru.victim() == 1

    def test_fill_counts_as_use(self):
        lru = LRUPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        assert lru.victim() == 0

    def test_invalidate_frees_way(self):
        lru = LRUPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_invalidate(0)
        assert lru.victim() == 0

    def test_recency_order(self):
        lru = LRUPolicy(3)
        for w in (0, 1, 2):
            lru.on_fill(w)
        lru.on_access(0)
        assert lru.recency_order() == [0, 2, 1]

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=60))
    @settings(max_examples=100)
    def test_matches_reference_model(self, accesses):
        """LRU victim always equals an order-list reference model."""
        lru = LRUPolicy(4)
        order = []  # most recent last
        for way in accesses:
            if way in order:
                order.remove(way)
                lru.on_access(way)
            else:
                lru.on_fill(way)
            order.append(way)
        if len(order) == 4:
            assert lru.victim() == order[0]


class TestFIFO:
    def test_ignores_touches(self):
        fifo = FIFOPolicy(2)
        fifo.on_fill(0)
        fifo.on_fill(1)
        fifo.on_access(0)
        assert fifo.victim() == 0  # still first-in

    def test_refill_moves_to_back(self):
        fifo = FIFOPolicy(2)
        fifo.on_fill(0)
        fifo.on_fill(1)
        fifo.on_fill(0)
        assert fifo.victim() == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(8, seed=42)
        b = RandomPolicy(8, seed=42)
        for w in range(8):
            a.on_fill(w)
            b.on_fill(w)
        assert [a.victim() for _ in range(10)] == [b.victim() for _ in range(10)]

    def test_victim_in_range(self):
        r = RandomPolicy(4, seed=1)
        for w in range(4):
            r.on_fill(w)
        assert all(0 <= r.victim() < 4 for _ in range(20))


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRUPolicy(6)

    def test_victim_avoids_most_recent(self):
        plru = TreePLRUPolicy(4)
        for w in range(4):
            plru.on_fill(w)
        plru.on_access(2)
        assert plru.victim() != 2

    def test_two_way_behaves_like_lru(self):
        plru = TreePLRUPolicy(2)
        plru.on_fill(0)
        plru.on_fill(1)
        plru.on_access(0)
        assert plru.victim() == 1

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=40))
    @settings(max_examples=60)
    def test_never_evicts_the_hottest(self, accesses):
        plru = TreePLRUPolicy(8)
        for w in range(8):
            plru.on_fill(w)
        for way in accesses:
            plru.on_access(way)
        assert plru.victim() != accesses[-1]


class TestRegistry:
    def test_make_policy_all_names(self):
        for name in policy_names():
            policy = make_policy(name, 4)
            policy.on_fill(0)
            assert 0 <= policy.victim() < 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("belady", 4)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy(0)
