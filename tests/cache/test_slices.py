"""LLC slice hashing and Sec. 6.4 feasibility case analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import params
from repro.cache.slices import SliceHash, llc_bia_feasibility
from repro.errors import ConfigurationError


class TestSliceHash:
    def test_single_slice(self):
        assert SliceHash(1).slice_of(0xDEADBEEF) == 0

    def test_slice_in_range(self):
        h = SliceHash(8, ls_hash=12)
        for addr in range(0, 1 << 20, 4096):
            assert 0 <= h.slice_of(addr) < 8

    def test_same_page_same_slice_when_ls_hash_12(self):
        """The property Sec. 6.4 relies on for M=12 feasibility."""
        h = SliceHash(8, ls_hash=12)
        base = 0x123000
        slices = {
            h.slice_of(base + i * params.LINE_SIZE) for i in range(64)
        }
        assert len(slices) == 1

    def test_lines_spread_when_ls_hash_6(self):
        """The Xeon E5-2430 case: consecutive lines hit many slices."""
        h = SliceHash(8, ls_hash=6)
        slices = {
            h.slice_of(0x123000 + i * params.LINE_SIZE) for i in range(64)
        }
        assert len(slices) > 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SliceHash(6)

    def test_rejects_sub_line_hash(self):
        with pytest.raises(ConfigurationError):
            SliceHash(4, ls_hash=3)

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1))
    def test_deterministic(self, addr):
        h = SliceHash(4, ls_hash=10)
        assert h.slice_of(addr) == h.slice_of(addr)


class TestFeasibility:
    def test_skylake_case(self):
        f = llc_bia_feasibility(12)
        assert f.feasible and f.management_bits == params.PAGE_BITS

    def test_above_page_bits(self):
        f = llc_bia_feasibility(14)
        assert f.feasible and f.management_bits == params.PAGE_BITS

    def test_intermediate_case_shrinks_m(self):
        f = llc_bia_feasibility(9)
        assert f.feasible and f.management_bits == 9

    def test_xeon_case_infeasible(self):
        f = llc_bia_feasibility(6)
        assert not f.feasible

    def test_invalid_ls_hash(self):
        with pytest.raises(ConfigurationError):
            llc_bia_feasibility(4)
