"""Silent stores (Sec. 2.4): the deferred hardware/software-contract gap.

The paper: "the main concern about secret-dependent memory access is
silent stores ... we leave the silent store issue to a future study."
This module makes the concern concrete: with silent-store squashing
enabled, the dirty bit becomes a function of the *value* written, so a
software-CT store sweep (which rewrites every DS line with its own
value) no longer leaves a secret-independent dirty footprint.
"""

import pytest

from repro.attacks.analysis import check_trace_equivalence
from repro.core.machine import Machine, MachineConfig
from repro.ct.linearize import SoftwareCTContext
from repro.errors import SecurityViolationError


def silent_machine():
    return Machine(MachineConfig(silent_stores=True))


class TestSquashing:
    def test_same_value_store_stays_clean(self):
        machine = silent_machine()
        machine.memory.write_word(0x10000, 7)
        machine.store_word(0x10000, 7)  # silent: same value
        assert 0x10000 in machine.l1d
        assert not machine.l1d.is_dirty(0x10000)

    def test_changed_value_store_dirties(self):
        machine = silent_machine()
        machine.memory.write_word(0x10000, 7)
        machine.store_word(0x10000, 8)
        assert machine.l1d.is_dirty(0x10000)
        assert machine.memory.read_word(0x10000) == 8

    def test_functionally_transparent(self):
        machine = silent_machine()
        for value in (5, 5, 6, 6, 5):
            machine.store_word(0x10000, value)
        assert machine.load_word(0x10000) == 5

    def test_counters_still_move(self):
        machine = silent_machine()
        machine.memory.write_word(0x10000, 7)
        machine.store_word(0x10000, 7)
        assert machine.stats.stores == 1
        assert machine.stats.l1d_refs == 1

    def test_disabled_by_default(self):
        machine = Machine(MachineConfig())
        machine.memory.write_word(0x10000, 7)
        machine.store_word(0x10000, 7)
        assert machine.l1d.is_dirty(0x10000)


class TestTheDeferredLeak:
    """Software CT's store sweep breaks under silent stores."""

    def _victim_factory(self, secret):
        def victim(machine):
            ctx = SoftwareCTContext(machine)
            base = machine.allocator.alloc_words(64)
            for i in range(64):
                machine.memory.write_word(base + 4 * i, 0)
            ds = ctx.register_ds(base, 256, "t")
            # constant-time store of a secret-dependent VALUE at a
            # secret-dependent LINE: the sweep rewrites the other
            # lines with their own values -> squashed -> clean, while
            # the target line's changed value -> dirty.  The dirty
            # footprint now names the secret's line.
            ctx.store(ds, base + 4 * ((secret * 16) % 64), secret + 1)

        return victim

    def test_ct_store_sweep_leaks_with_silent_stores(self):
        with pytest.raises(SecurityViolationError):
            check_trace_equivalence(
                silent_machine, self._victim_factory, [1, 2, 3]
            )

    def test_same_program_is_safe_without_silent_stores(self):
        check_trace_equivalence(
            lambda: Machine(MachineConfig()), self._victim_factory, [1, 2, 3]
        )
