"""Sec. 6.2 macro-operations: bitmap hiding + privilege enforcement."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.macro_ops import MacroOpUnit
from repro.errors import ProtocolError


@pytest.fixture
def unit_setup():
    machine = Machine(MachineConfig())
    unit = MacroOpUnit(machine)
    base = machine.allocator.alloc_words(300)
    for i in range(300):
        machine.memory.write_word(base + 4 * i, 1000 + i)
    handle = unit.define_ds(base, 1200, "arr")
    return machine, unit, base, handle


class TestMacroOps:
    def test_secure_load(self, unit_setup):
        machine, unit, base, handle = unit_setup
        assert unit.secure_load(handle, base + 4 * 42) == 1042

    def test_secure_store(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.secure_store(handle, base + 4 * 42, 7)
        assert unit.secure_load(handle, base + 4 * 42) == 7

    def test_secure_rmw(self, unit_setup):
        machine, unit, base, handle = unit_setup
        old = unit.secure_rmw(handle, base, lambda v: v + 5)
        assert old == 1000
        assert unit.secure_load(handle, base) == 1005

    def test_secure_gather(self, unit_setup):
        machine, unit, base, handle = unit_setup
        assert unit.secure_gather(handle, [base, base + 4 * 10]) == [1000, 1010]

    def test_unknown_handle(self, unit_setup):
        machine, unit, base, handle = unit_setup
        with pytest.raises(ProtocolError):
            unit.secure_load(handle + 99, base)

    def test_macro_api_returns_no_bitmaps(self, unit_setup):
        """The whole point of Sec. 6.2: only data crosses the boundary."""
        machine, unit, base, handle = unit_setup
        result = unit.secure_load(handle, base)
        assert isinstance(result, int)
        assert unit.secure_store(handle, base, 1) is None


class TestUserMode:
    def test_raw_ct_ops_blocked_in_user_mode(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.enter_user_mode()
        with pytest.raises(ProtocolError):
            machine.ctload(base)
        with pytest.raises(ProtocolError):
            machine.ctstore(base, 0)

    def test_macro_ops_still_work_in_user_mode(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.enter_user_mode()
        assert unit.secure_load(handle, base + 4) == 1001
        unit.secure_store(handle, base + 4, 9)
        assert unit.secure_load(handle, base + 4) == 9

    def test_exit_user_mode_restores_raw_ops(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.enter_user_mode()
        unit.exit_user_mode()
        machine.ctload(base)  # must not raise

    def test_define_ds_in_user_mode(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.enter_user_mode()
        other = machine.allocator.alloc_words(64)
        h2 = unit.define_ds(other, 256, "small")
        assert unit.secure_load(h2, other) == 0

    def test_privilege_survives_nested_macro_ops(self, unit_setup):
        machine, unit, base, handle = unit_setup
        unit.enter_user_mode()
        # rmw nests load+store inside one microcode scope
        unit.secure_rmw(handle, base, lambda v: v + 1)
        with pytest.raises(ProtocolError):
            machine.ctload(base)  # back outside microcode: still blocked
