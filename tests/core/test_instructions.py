"""CTLoad / CTStore micro-op semantics, including the Fig. 6 races."""

from repro import params
from repro.core.machine import Machine, MachineConfig

LINE = params.LINE_SIZE


def fresh(bia_level="L1D"):
    return Machine(MachineConfig(bia_level=bia_level))


class TestCTLoad:
    def test_hit_returns_real_data(self, machine):
        machine.memory.write_word(0x10000, 1234)
        machine.load_word(0x10000)  # brings the line in
        data, _ = machine.ctload(0x10000)
        assert data == 1234

    def test_miss_returns_fake_zero(self, machine):
        machine.memory.write_word(0x10000, 1234)
        data, _ = machine.ctload(0x10000)
        assert data == 0

    def test_miss_does_not_fill(self, machine):
        machine.ctload(0x10000)
        assert machine.hierarchy.where(0x10000 // LINE * LINE) == []

    def test_miss_not_forwarded_to_next_level(self, machine):
        machine.ctload(0x10000)
        assert machine.dram.stats.reads == 0
        assert machine.l2.stats.accesses == 0

    def test_returns_existence_bitmap(self, machine):
        machine.load_word(0x10000)
        machine.ctload(0x10000)  # allocates the BIA entry (zeroed)
        machine.load_word(0x10040)  # monitored fill updates the entry
        _, existence = machine.ctload(0x10000)
        assert existence & 0b10  # line 1 of the page known present

    def test_does_not_update_lru(self):
        machine = Machine(
            MachineConfig(l1d_size=8 * 1024, l1d_assoc=2)
        )  # 64 sets
        way_stride = 64 * LINE * 2  # lines mapping to the same L1 set
        a, b, c = 0x10000, 0x10000 + way_stride, 0x10000 + 2 * way_stride
        machine.load_word(a)
        machine.load_word(b)
        machine.ctload(a)  # must NOT make `a` most-recently-used
        machine.load_word(c)  # evicts the true LRU: a
        assert machine.l1d.lookup(a) is None

    def test_does_not_teach_bia(self, machine):
        """CTLoad's own (secret-dependent) probe must not set bits."""
        machine.load_word(0x10000)
        machine.ctload(0x10000)  # BIA entry allocated zeroed
        _, existence = machine.ctload(0x10000)
        assert existence == 0  # the probe hits, but the bitmap stays


class TestCTStore:
    def test_writes_only_if_dirty(self, machine):
        machine.memory.write_word(0x10000, 1)
        machine.store_word(0x10000, 1)  # line dirty in L1
        machine.ctstore(0x10000, 42)
        assert machine.memory.read_word(0x10000) == 42

    def test_clean_line_not_written(self, machine):
        machine.memory.write_word(0x10000, 1)
        machine.load_word(0x10000)  # resident but clean
        machine.ctstore(0x10000, 42)
        assert machine.memory.read_word(0x10000) == 1

    def test_absent_line_not_written(self, machine):
        machine.memory.write_word(0x10000, 1)
        machine.ctstore(0x10000, 42)
        assert machine.memory.read_word(0x10000) == 1

    def test_does_not_change_dirty_bits(self, machine):
        machine.load_word(0x10000)
        machine.ctstore(0x10000, 42)
        assert not machine.l1d.is_dirty(0x10000)

    def test_returns_dirtiness_bitmap(self, machine):
        machine.ctload(0x10000)  # allocate entry
        machine.store_word(0x10040, 7)  # dirty line 1, monitored
        dirt = machine.ctstore(0x10000, 0)
        assert dirt & 0b10


class TestFig6Races:
    """The four CTLoad-then-CTStore interleavings of Figure 6."""

    def test_a_load_success(self, machine):
        """(a): dirty at CTLoad, still dirty at CTStore -> committed."""
        machine.memory.write_word(0x10000, 5)
        machine.store_word(0x10000, 5)
        ld, _ = machine.ctload(0x10000)
        assert ld == 5  # real data
        machine.ctstore(0x10000, 99)
        assert machine.memory.read_word(0x10000) == 99

    def test_b_load_fail_fake_data_blocked(self, machine):
        """(b): absent at CTLoad -> fake data; CTStore must not commit."""
        machine.memory.write_word(0x10040, 7)
        ld, _ = machine.ctload(0x10040)
        assert ld == 0  # fake
        machine.ctstore(0x10040, ld)
        assert machine.memory.read_word(0x10040) == 7  # uncorrupted

    def test_c_evicted_between(self, machine):
        """(c): dirty at CTLoad, attacker evicts -> CTStore does nothing."""
        machine.memory.write_word(0x10000, 5)
        machine.store_word(0x10000, 5)
        ld, _ = machine.ctload(0x10000)
        assert ld == 5
        machine.attacker_evict("L1D", 0x10000)
        machine.ctstore(0x10000, 99)
        # The dirty line was written back on eviction; value preserved,
        # and the CTStore write did not happen at any level.
        assert machine.memory.read_word(0x10000) == 5

    def test_d_prefetched_between(self):
        """(d): miss at CTLoad, prefetcher brings the line in CLEAN ->
        CTStore still refuses to write the fake data."""
        machine = Machine(MachineConfig(prefetcher=True))
        machine.memory.write_word(0x10040, 7)
        ld, _ = machine.ctload(0x10040)
        assert ld == 0
        # a demand miss on the previous line prefetches 0x10040 in, clean
        machine.load_word(0x10000)
        assert 0x10040 in machine.l1d
        assert not machine.l1d.is_dirty(0x10040)
        machine.ctstore(0x10040, ld)
        assert machine.memory.read_word(0x10040) == 7


class TestL2ResidentBIA:
    def test_ct_ops_probe_l2(self):
        machine = fresh("L2")
        machine.memory.write_word(0x10000, 5)
        # Fill L2 only (bypass L1): the CT op must see it.
        machine.load_word(0x10000, start_level=machine.ds_start_level)
        assert 0x10000 not in machine.l1d
        data, _ = machine.ctload(0x10000)
        assert data == 5

    def test_l1_resident_only_is_a_ct_miss(self):
        """An L2-resident BIA never consults the L1."""
        machine = fresh("L2")
        machine.memory.write_word(0x10000, 5)
        machine.load_word(0x10000)  # fills L1 and L2
        machine.hierarchy.level("L2").invalidate(0x10000)
        data, _ = machine.ctload(0x10000)
        assert data == 0  # L2 miss -> fake data despite the L1 copy

    def test_ds_start_level(self):
        assert fresh("L1D").ds_start_level == 0
        assert fresh("L2").ds_start_level == 1

    def test_latency_reflects_level(self):
        l1 = fresh("L1D")
        l2 = fresh("L2")
        l1.ctload(0x10000)
        l2.ctload(0x10000)
        assert l2.stats.cycles > l1.stats.cycles
