"""Sec. 6.4: the LLC-resident BIA on a sliced last-level cache.

Covers the three LS_Hash regimes, functional correctness with the
shrunken management granularity M, and the interconnect security
property: the sequence of LLC slices the victim's traffic visits must
be independent of the secret — which holds when M <= LS_Hash and
demonstrably breaks when the granularity rule is violated.
"""

import pytest

from repro import params
from repro.core.machine import Machine, MachineConfig
from repro.ct.bia_ops import BIAContext
from repro.errors import ConfigurationError


def llc_machine(ls_hash=12, slices=8, **kw):
    return Machine(
        MachineConfig(
            bia_level="LLC", llc_slices=slices, ls_hash=ls_hash, **kw
        )
    )


def setup_array(machine, n=300):
    ctx = BIAContext(machine)
    base = machine.allocator.alloc_words(n)
    for i in range(n):
        machine.memory.write_word(base + 4 * i, 1000 + i)
    ds = ctx.register_ds(base, n * 4, "arr")
    return ctx, base, ds


class TestConfiguration:
    def test_skylake_like_uses_page_granularity(self):
        machine = llc_machine(ls_hash=12)
        assert machine.management_bits == params.PAGE_BITS
        assert machine.bia.group_bits == params.PAGE_BITS

    def test_intermediate_hash_shrinks_m(self):
        machine = llc_machine(ls_hash=9)
        assert machine.management_bits == 9
        assert machine.bia.lines_per_group == 8  # 2**(9-6)

    def test_xeon_like_rejected(self):
        with pytest.raises(ConfigurationError):
            llc_machine(ls_hash=6)

    def test_l1d_bia_ignores_ls_hash(self):
        machine = Machine(MachineConfig(bia_level="L1D", ls_hash=8))
        assert machine.management_bits == params.PAGE_BITS

    def test_management_override(self):
        machine = llc_machine(ls_hash=8, management_bits=12)
        assert machine.management_bits == 12  # misconfiguration, allowed

    def test_ct_ops_probe_llc(self):
        machine = llc_machine()
        assert machine.ds_start_level == machine.hierarchy.level_index("LLC")


class TestFunctional:
    @pytest.mark.parametrize("ls_hash", [8, 9, 12])
    def test_load_store_roundtrip(self, ls_hash):
        machine = llc_machine(ls_hash=ls_hash)
        ctx, base, ds = setup_array(machine)
        assert ctx.load(ds, base + 4 * 42) == 1042
        ctx.store(ds, base + 4 * 42, 7)
        assert ctx.load(ds, base + 4 * 42) == 7

    def test_gather(self):
        machine = llc_machine(ls_hash=8)
        ctx, base, ds = setup_array(machine)
        addrs = [base + 4 * i for i in (0, 17, 250)]
        assert ctx.gather(ds, addrs) == [1000, 1017, 1250]

    def test_ds_accesses_bypass_l1_and_l2(self):
        machine = llc_machine()
        ctx, base, ds = setup_array(machine)
        ctx.load(ds, base)
        assert base not in machine.l1d
        assert base not in machine.l2
        assert base in machine.llc

    def test_small_group_bitmask_width(self):
        machine = llc_machine(ls_hash=8)
        ctx, base, ds = setup_array(machine, n=128)  # 512 B = 8 lines
        view = ds.view(8)
        for group in view.groups:
            assert view.bitmask(group) < (1 << view.lines_per_group)


class TestInterconnectSecurity:
    def _slice_trace(self, machine_kw, secret):
        machine = llc_machine(**machine_kw)
        ctx, base, ds = setup_array(machine)
        machine.slice_trace.clear()
        ctx.load(ds, base + 4 * secret)
        ctx.store(ds, base + 4 * ((secret * 13) % 300), 1)
        return tuple(machine.slice_trace)

    @pytest.mark.parametrize("ls_hash", [8, 12])
    def test_slice_trace_secret_independent(self, ls_hash):
        """With M <= LS_Hash, inter-slice traffic hides the offset."""
        traces = {
            self._slice_trace({"ls_hash": ls_hash}, secret)
            for secret in (5, 100, 250)
        }
        assert len(traces) == 1

    def test_wrong_granularity_leaks(self):
        """Forcing M=12 on an LS_Hash=8 machine: a management group
        spans 16 slices-worth of address bits, so the CT-op's
        secret-dependent offset selects a secret-dependent slice."""
        traces = {
            self._slice_trace(
                {"ls_hash": 8, "management_bits": 12}, secret
            )
            for secret in (5, 100, 250)
        }
        assert len(traces) > 1

    def test_reset_stats_clears_slice_trace(self):
        """Regression: ``Machine.reset_stats`` must drop the
        interconnect trace, or warm-up traffic leaks into the measured
        phase on sliced-LLC machines (it used to survive resets)."""
        machine = llc_machine(ls_hash=8)
        ctx, base, ds = setup_array(machine)
        ctx.load(ds, base)
        assert machine.slice_trace  # warm-up produced traffic
        machine.reset_stats()
        assert machine.slice_trace == []
        # the measured phase starts from a clean trace
        ctx.load(ds, base + 4)
        measured = tuple(machine.slice_trace)
        machine.reset_stats()
        ctx.load(ds, base + 4)
        assert tuple(machine.slice_trace) == measured

    def test_gather_slice_trace_secret_independent(self):
        def trace(secret):
            machine = llc_machine(ls_hash=8)
            ctx, base, ds = setup_array(machine)
            machine.slice_trace.clear()
            ctx.gather(ds, [base + 4 * ((secret * k) % 300) for k in (1, 7, 11)])
            return tuple(machine.slice_trace)

        assert len({trace(s) for s in (3, 50, 200)}) == 1
