"""Cross-core sharing: remote attacker on the victim's LLC."""

import pytest

from repro import params
from repro.core.machine import Machine, MachineConfig
from repro.core.multicore import RemoteCore
from repro.ct.bia_ops import BIAContext
from repro.ct.context import InsecureContext

LINE = params.LINE_SIZE


def shared_setup(inclusive=True, **kw):
    machine = Machine(MachineConfig(inclusive_llc=inclusive, **kw))
    remote = RemoteCore(machine)
    return machine, remote


class TestSharing:
    def test_remote_sees_victim_llc_lines(self):
        machine, remote = shared_setup()
        machine.load_word(0x10000)
        assert remote.llc_load(0x10000) == machine.llc.latency  # LLC hit

    def test_remote_private_caches_are_private(self):
        machine, remote = shared_setup()
        remote.load(0x10000)
        assert 0x10000 not in machine.l1d
        assert 0x10000 in remote.l1
        assert 0x10000 in machine.llc  # shared level

    def test_remote_loads_not_in_victim_stats(self):
        machine, remote = shared_setup()
        remote.load(0x10000)
        assert machine.stats.l1d_refs == 0

    def test_cross_core_flush(self):
        machine, remote = shared_setup()
        machine.load_word(0x10000)
        remote.flush(0x10000)
        assert machine.hierarchy.where(0x10000) == []
        # the victim's reload goes all the way to DRAM
        before = machine.dram.stats.reads
        machine.load_word(0x10000)
        assert machine.dram.stats.reads == before + 1


class TestInclusivity:
    def test_llc_eviction_back_invalidates_victim_l1(self):
        machine, remote = shared_setup(inclusive=True)
        machine.load_word(0x10000)
        assert 0x10000 in machine.l1d
        machine.llc.invalidate(0x10000)
        assert 0x10000 not in machine.l1d
        assert 0x10000 not in machine.l2

    def test_non_inclusive_keeps_private_copies(self):
        machine, remote = shared_setup(inclusive=False)
        machine.load_word(0x10000)
        machine.llc.invalidate(0x10000)
        assert 0x10000 in machine.l1d

    def test_remote_core_enrolled_in_back_invalidation(self):
        machine, remote = shared_setup(inclusive=True)
        remote.load(0x10000)
        machine.llc.invalidate(0x10000)
        assert 0x10000 not in remote.l1


class TestCrossCorePrimeProbe:
    """LLC Prime+Probe from the remote core, per Sec. 2.4's second case."""

    def _attack(self, make_ctx, secret_line: int):
        machine, remote = shared_setup(inclusive=True)
        ctx = make_ctx(machine)
        base = machine.allocator.alloc_words(1024)  # 64 lines
        for i in range(1024):
            machine.memory.write_word(base + 4 * i, 0)
        ds = ctx.register_ds(base, 4096, "bins")
        target = base + secret_line * LINE
        target_set = machine.llc.set_index(target)
        # Prime: fill the target's LLC set with attacker lines.
        stride = machine.llc.num_sets * LINE
        attacker_lines = [
            0x4000_0000 + target_set * LINE + way * stride
            for way in range(machine.llc.assoc)
        ]
        for line in attacker_lines:
            remote.llc_load(line)
        # Victim: one secret-dependent load.
        ctx.load(ds, target)
        # Probe: count displaced attacker ways in that set.
        return sum(
            1
            for line in attacker_lines
            if remote.llc_load(line) > remote.llc_hit_latency()
        )

    def test_insecure_victim_detected(self):
        misses = self._attack(InsecureContext, secret_line=5)
        assert misses >= 1

    def test_bia_victim_constant_footprint(self):
        """Against the BIA victim the probe outcome is the same for
        every secret (the DS fetch is set-uniform)."""
        outcomes = {
            self._attack(BIAContext, secret_line=line) for line in (3, 17, 42)
        }
        assert len(outcomes) == 1
