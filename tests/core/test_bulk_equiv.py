"""Differential proof: bulk-access kernels == scalar loops, observably.

The batched kernels (:meth:`Machine.load_words` / ``store_words`` /
``rmw_words`` and the DS sweep wrappers) promise *observational
identity* with the scalar ``execute`` + ``load_word`` / ``store_word``
loops they replace: same counters, same event traces (when anyone
listens), same final cache state, same per-set access profiles, same
memory image, same returned values.  These properties drive both paths
on twin machines over Hypothesis-generated configurations — replacement
policies, set geometries, silent-store machines, secret-dependent
flags, listener presence — and diff everything an attacker (or a
figure) could read.

The default cost model has an integer-valued CPI, and these tests keep
it: the kernels replicate the scalar float-addition order per element,
and integer CPI additionally makes every consumer-level fold exact.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.observer import ObservableTraceRecorder
from repro.core.machine import Machine, MachineConfig

ARENA_LINES = 512  # 32 KiB arena: larger than a 4 KiB L1d, smaller than L2

#: (l1d_size, l1d_assoc) choices — from direct-mapped-ish tiny up to Table 1.
GEOMETRIES = [(4096, 4), (8192, 8), (16384, 2), (65536, 8)]

POLICIES = ["lru", "fifo", "random", "plru"]

configs = st.builds(
    lambda geom, policy, silent, seed: MachineConfig(
        l1d_size=geom[0],
        l1d_assoc=geom[1],
        replacement=policy,
        silent_stores=silent,
        replacement_seed=seed,
    ),
    geom=st.sampled_from(GEOMETRIES),
    policy=st.sampled_from(POLICIES),
    silent=st.booleans(),
    seed=st.integers(min_value=0, max_value=3),
)

addr_seqs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ARENA_LINES - 1),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=120,
)


def _twins(config, listeners):
    """Two identical machines (+ recorders), arena base, listener flag."""
    machines, recorders = [], []
    base = None
    for _ in range(2):
        m = Machine(config)
        base = m.allocator.alloc(ARENA_LINES * 64, "arena")
        rng = random.Random(99)
        for i in range(ARENA_LINES):
            m.memory.write_word(base + 64 * i, rng.randrange(1 << 32))
        if listeners:
            m.ctops.ctload(base)  # allocate a BIA entry: events now flow
            rec = ObservableTraceRecorder()
            for lvl in ("L1D", "L2", "LLC"):
                rec.attach(m.hierarchy.level(lvl))
        else:
            rec = None
        machines.append(m)
        recorders.append(rec)
    return machines, recorders, base


def _assert_observably_equal(ma, mb, ra, rb, base, where=""):
    assert ma.snapshot() == mb.snapshot(), where
    for lvl in ("L1D", "L2", "LLC"):
        sa = ma.hierarchy.level(lvl).stats
        sb = mb.hierarchy.level(lvl).stats
        assert (sa.hits, sa.misses, sa.fills, sa.evictions,
                sa.dirty_evictions) == (
            sb.hits, sb.misses, sb.fills, sb.evictions, sb.dirty_evictions
        ), (where, lvl)
        assert dict(sa.set_accesses) == dict(sb.set_accesses), (where, lvl)
    if ra is not None:
        assert ra.events == rb.events, where
        assert ra.final_state_digest() == rb.final_state_digest(), where
    for i in range(ARENA_LINES):
        a = base + 64 * i
        assert ma.memory.read_word(a) == mb.memory.read_word(a), (where, i)


class TestLoadWords:
    @given(config=configs, seq=addr_seqs, pre=st.integers(0, 4),
           secret=st.booleans(), listeners=st.booleans(),
           collect=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar(self, config, seq, pre, secret, listeners,
                            collect):
        (ma, mb), (ra, rb), base = _twins(config, listeners)
        addrs = [base + 64 * line + 4 * word for line, word in seq]
        got = ma.load_words(
            addrs, pre_insts=pre, secret_dependent=secret,
            collect_values=collect,
        )
        want = []
        for a in addrs:
            if pre:
                mb.execute(pre)
            want.append(mb.load_word(a, secret_dependent=secret))
        if collect:
            assert got == want
        else:
            assert got is None
        _assert_observably_equal(ma, mb, ra, rb, base, "load_words")


class TestStoreWords:
    @given(config=configs, seq=addr_seqs, pre=st.integers(0, 4),
           secret=st.booleans(), listeners=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar(self, config, seq, pre, secret, listeners):
        (ma, mb), (ra, rb), base = _twins(config, listeners)
        addrs = [base + 64 * line + 4 * word for line, word in seq]
        rng = random.Random(5)
        values = [rng.randrange(1 << 32) for _ in addrs]
        # Some silent-store candidates: rewrite the current contents.
        for i in range(0, len(addrs), 3):
            values[i] = ma.memory.read_word(addrs[i])
        ma.store_words(addrs, values, pre_insts=pre, secret_dependent=secret)
        for a, v in zip(addrs, values):
            if pre:
                mb.execute(pre)
            mb.store_word(a, v, secret_dependent=secret)
        _assert_observably_equal(ma, mb, ra, rb, base, "store_words")


class TestRmwWords:
    @given(config=configs, seq=addr_seqs, pre=st.integers(0, 4),
           secret=st.booleans(), listeners=st.booleans(),
           collect=st.booleans(), target_frac=st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar(self, config, seq, pre, secret, listeners,
                            collect, target_frac):
        (ma, mb), (ra, rb), base = _twins(config, listeners)
        addrs = [base + 64 * line + 4 * word for line, word in seq]
        target = int(target_frac * (len(addrs) - 1))
        fn = lambda v: (v * 3 + 1) & 0xFFFFFFFF  # noqa: E731
        got = ma.rmw_words(
            addrs, target_idx=target, target_fn=fn, pre_insts=pre,
            secret_dependent=secret, collect_values=collect,
        )
        want = []
        for i, a in enumerate(addrs):
            if pre:
                mb.execute(pre)
            v = mb.load_word(a, secret_dependent=secret)
            want.append(v)
            mb.store_word(a, fn(v) if i == target else v,
                          secret_dependent=secret)
        if collect:
            assert got == want
        else:
            assert got[target] == want[target]
            assert all(v is None for i, v in enumerate(got) if i != target)
        _assert_observably_equal(ma, mb, ra, rb, base, "rmw_words")


class TestCTSweepOps:
    """The software-CT context's batched sweeps vs its scalar contract."""

    @given(config=configs, ops=st.lists(
        st.tuples(st.sampled_from(["load", "store", "rmw", "gather"]),
                  st.integers(0, ARENA_LINES - 1)),
        min_size=1, max_size=12,
    ), listeners=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_context_ops_match_scalar_reference(self, config, ops,
                                                listeners):
        from repro.ct.linearize import SoftwareCTContext
        from repro.memory import address as addr_math

        (ma, mb), (ra, rb), base = _twins(config, listeners)
        ctx = SoftwareCTContext(ma, simd=True)
        ds = ctx.register_ds(base, ARENA_LINES * 64, "arena")
        ds_b = None  # scalar reference needs only the line list
        lines = list(ds.lines)
        costs = mb.costs
        elem = costs.ct_simd_elem_insts
        store_elem = elem + costs.ct_store_elem_extra_insts

        for kind, line_idx in ops:
            addr = base + 64 * line_idx + 4 * (line_idx % 16)
            if kind == "load":
                got = ctx.load(ds, addr)
                # scalar reference: visit + per-line (execute; load)
                mb.execute(costs.ct_visit_insts)
                off = addr_math.line_offset(addr)
                want = None
                for ln in lines:
                    mb.execute(elem)
                    v = mb.load_word(ln + off)
                    if ln == addr_math.line_base(addr):
                        want = v
                assert got == want
            elif kind in ("store", "rmw"):
                fn = (lambda v: (v + 7) & 0xFFFFFFFF)
                if kind == "store":
                    ctx.store(ds, addr, 1234 + line_idx)
                else:
                    got = ctx.rmw(ds, addr, fn)
                mb.execute(costs.ct_visit_insts)
                off = addr_math.line_offset(addr)
                tgt = addr_math.line_base(addr)
                for ln in lines:
                    mb.execute(store_elem)
                    v = mb.load_word(ln + off)
                    if ln == tgt:
                        if kind == "rmw":
                            assert got == v
                            new = fn(v)
                        else:
                            new = 1234 + line_idx
                    else:
                        new = v
                    mb.store_word(ln + off, new)
            else:  # gather
                width = 1 + line_idx % 7
                rng = random.Random(line_idx)
                batch = [
                    base + 64 * rng.randrange(ARENA_LINES) for _ in range(width)
                ]
                got = ctx.gather(ds, batch)
                # scalar reference: visit + one full sweep + selects +
                # charged repeats (identical to the context's contract)
                mb.execute(costs.ct_visit_insts)
                for ln in lines:
                    mb.execute(elem)
                    mb.load_word(ln)
                mb.execute(costs.gather_elem_insts * len(batch))
                want = [mb.memory.read_word(a) for a in batch]
                wanted_lines = {addr_math.line_base(a) for a in batch}
                repeats = max(len(wanted_lines) - 1, 0)
                if repeats:
                    mb.execute(repeats * costs.ct_visit_insts)
                    mb.charge_memory(
                        repeats * len(lines), costs.ct_gather_repeat_latency
                    )
                assert got == want
        _assert_observably_equal(ma, mb, ra, rb, base, "ct-sweep")


class TestSweepWrappers:
    def test_sweep_load_lines_uses_ds_decomposition(self):
        from repro.ct.ds import DataflowLinearizationSet

        m = Machine(MachineConfig())
        base = m.allocator.alloc(8 * 1024, "b")
        ds = DataflowLinearizationSet.from_range(base, 8 * 1024, name="b")
        ref = Machine(MachineConfig())
        ref.allocator.alloc(8 * 1024, "b")
        vals = m.sweep_load_lines(ds, offset=8)
        for line in ds.lines:
            ref.load_word(line + 8)
        assert m.snapshot() == ref.snapshot()
        assert vals == [m.memory.read_word(line + 8) for line in ds.lines]

    def test_sweep_store_lines_applies_target_only(self):
        from repro.ct.ds import DataflowLinearizationSet

        m = Machine(MachineConfig())
        base = m.allocator.alloc(4 * 1024, "b")
        for i in range(64):
            m.memory.write_word(base + 64 * i, i)
        ds = DataflowLinearizationSet.from_range(base, 4 * 1024, name="b")
        old = m.sweep_store_lines(ds, target_idx=5, target_fn=lambda v: 777)
        assert old[5] == 5
        for i in range(64):
            expect = 777 if i == 5 else i
            assert m.memory.read_word(base + 64 * i) == expect

    def test_offset_must_stay_intra_line(self):
        # documented contract: offset < line size keeps words on DS lines
        from repro.ct.ds import DataflowLinearizationSet

        m = Machine(MachineConfig())
        base = m.allocator.alloc(1024, "b")
        ds = DataflowLinearizationSet.from_range(base, 1024, name="b")
        vals = m.sweep_load_lines(ds, offset=60)
        assert len(vals) == len(ds.lines)


class TestWarmPool:
    """The experiment engine's pooled machines == fresh machines."""

    SPECS = [
        ("histogram", 200, "insecure"),
        ("histogram", 200, "ct"),
        ("binary_search", 128, "bia-l1d"),
        ("histogram", 200, "bia-llc"),
    ]

    def test_pooled_runs_counter_identical_to_fresh(self):
        from repro.experiments.parallel import (
            RunSpec,
            use_warm_pool,
            warm_pool,
        )

        specs = [
            RunSpec(w, size, scheme, seed)
            for w, size, scheme in self.SPECS
            for seed in (1, 2)
        ]
        try:
            use_warm_pool(False)
            fresh = [s.run() for s in specs]
            pool = use_warm_pool(True)
            # run twice: second pass exercises restore-and-reuse
            pooled = [s.run() for s in specs] + [s.run() for s in specs]
        finally:
            use_warm_pool(True)
        for f, p in zip(fresh + fresh, pooled):
            assert f.counters == p.counters
            assert f.output == p.output
            assert f.label == p.label
        assert pool.stats.builds == len(self.SPECS)
        assert pool.stats.reuses == 2 * len(specs) - len(self.SPECS)
        assert warm_pool() is not None  # default engine keeps a pool


@pytest.mark.parametrize("scheme", ["plain", "plcache"])
def test_rmw_words_miss_resume_across_fill_refusal(scheme):
    """The kernel's miss-resume path stays exact when fills are refused."""
    config = MachineConfig(plcache=(scheme == "plcache"))
    ma, mb = Machine(config), Machine(config)
    base = None
    for m in (ma, mb):
        base = m.allocator.alloc(16 * 1024, "b")
    if scheme == "plcache":
        # lock whole sets so some DS fills are refused
        for m in (ma, mb):
            for i in range(64):
                m.load_word(base + 64 * i)
                m.l1d.lock(base + 64 * i)
    addrs = [base + 64 * (i % 256) for i in range(300)]
    got = ma.rmw_words(addrs, target_idx=7, target_fn=lambda v: v + 1)
    want = []
    for i, a in enumerate(addrs):
        v = mb.load_word(a)
        want.append(v)
        mb.store_word(a, v + 1 if i == 7 else v)
    assert got == want
    assert ma.snapshot() == mb.snapshot()
