"""Machine integration: counters, actors, configuration."""

import pytest

from repro.core.costs import CostModel
from repro.core.machine import Machine, MachineConfig, build_machine
from repro.errors import ConfigurationError


class TestCounters:
    def test_execute(self, machine):
        machine.execute(10)
        assert machine.stats.insts == 10
        assert machine.stats.l1i_refs == 10
        assert machine.stats.cycles == 10.0

    def test_execute_rejects_negative(self, machine):
        with pytest.raises(ConfigurationError):
            machine.execute(-1)

    def test_load_counts(self, machine):
        machine.load_word(0x10000)
        assert machine.stats.loads == 1
        assert machine.stats.l1d_refs == 1
        assert machine.stats.insts == 1
        # cold miss: L1 + L2 + LLC + DRAM latencies (the memory
        # instruction's own cycle is part of the access latency)
        assert machine.stats.cycles == 2 + 15 + 41 + 200

    def test_warm_load_latency(self, machine):
        machine.load_word(0x10000)
        before = machine.stats.cycles
        machine.load_word(0x10000)
        assert machine.stats.cycles - before == 2

    def test_store_roundtrip(self, machine):
        machine.store_word(0x10000, 77)
        assert machine.load_word(0x10000) == 77
        assert machine.stats.stores == 1

    def test_ct_ops_counted(self, machine):
        machine.ctload(0x10000)
        machine.ctstore(0x10000, 0)
        assert machine.stats.ct_loads == 1
        assert machine.stats.ct_stores == 1
        assert machine.stats.l1d_refs == 2

    def test_charge_memory(self, machine):
        machine.charge_memory(100, 1.0)
        assert machine.stats.l1d_refs == 100
        assert machine.stats.cycles == 100 * 1.0

    def test_uncached_ops(self, machine):
        machine.store_word_uncached(0x10000, 9)
        assert machine.load_word_uncached(0x10000) == 9
        assert machine.hierarchy.where(0x10000) == []
        assert machine.dram.stats.accesses == 2

    def test_reset_stats_preserves_cache_contents(self, machine):
        machine.load_word(0x10000)
        machine.reset_stats()
        assert machine.stats.cycles == 0
        assert 0x10000 in machine.l1d


class TestSnapshot:
    def test_snapshot_keys(self, machine):
        machine.load_word(0x10000)
        snap = machine.snapshot()
        for key in (
            "insts",
            "l1i_refs",
            "l1d_refs",
            "cycles",
            "l1d_hits",
            "l1d_misses",
            "l2_hits",
            "llc_misses",
            "dram_accesses",
            "llc_miss_total",
            "bia_lookups",
        ):
            assert key in snap

    def test_snapshot_counts_dram(self, machine):
        machine.load_word(0x10000)
        assert machine.snapshot()["dram_accesses"] == 1


class TestAttackerActor:
    def test_attacker_not_in_victim_stats(self, machine):
        machine.attacker_load(0x10000)
        assert machine.stats.l1d_refs == 0
        assert machine.stats.cycles == 0

    def test_attacker_latency_reveals_misses(self, machine):
        cold = machine.attacker_load(0x10000)
        warm = machine.attacker_load(0x10000)
        assert cold > warm == machine.l1d.latency

    def test_attacker_flush(self, machine):
        machine.load_word(0x10000)
        machine.attacker_flush(0x10000)
        assert machine.hierarchy.where(0x10000) == []

    def test_attacker_evict_single_level(self, machine):
        machine.load_word(0x10000)
        machine.attacker_evict("L1D", 0x10000)
        assert machine.hierarchy.where(0x10000) == ["L2", "LLC"]


class TestConfig:
    def test_table1_defaults(self):
        config = MachineConfig()
        desc = config.describe()
        assert "64 KB" in desc["L1d cache"]
        assert "1 MB" in desc["L2 cache"]
        assert "16 MB" in desc["Last Level cache"]
        assert "1 KB" in desc["BIA"]
        assert "L1D" in desc["BIA"]

    def test_build_machine_levels(self):
        assert build_machine("L1D").bia.monitored_cache == "L1D"
        assert build_machine("L2").bia.monitored_cache == "L2"

    def test_custom_costs(self):
        machine = build_machine(costs=CostModel(cpi=2.0))
        machine.execute(5)
        assert machine.stats.cycles == 10.0

    def test_bad_bia_level(self):
        with pytest.raises(ConfigurationError):
            build_machine("L4")

    def test_replacement_policy_override(self):
        machine = Machine(MachineConfig(replacement="fifo"))
        assert machine.l1d.replacement == "fifo"

    def test_prefetcher_wiring(self):
        machine = Machine(MachineConfig(prefetcher=True))
        assert machine.hierarchy.prefetcher is not None
        machine = Machine(MachineConfig())
        assert machine.hierarchy.prefetcher is None


class TestCostModelValidation:
    def test_rejects_bad_cpi(self):
        with pytest.raises(ConfigurationError):
            CostModel(cpi=0)

    def test_rejects_negative_insts(self):
        with pytest.raises(ConfigurationError):
            CostModel(bia_call_insts=-1)

    def test_defaults_valid(self):
        CostModel()  # must not raise


class TestDRAMPolicy:
    def test_default_closed(self):
        machine = Machine(MachineConfig())
        assert machine.dram.policy == "closed"

    def test_open_policy_wiring(self):
        machine = Machine(MachineConfig(dram_policy="open"))
        machine.load_word(0x10000)  # cold miss opens the row
        assert machine.dram.stats.row_conflicts == 1

    def test_open_policy_row_hit_is_cheaper(self):
        """Two uncached accesses to the same row: the second is a row
        hit under the open policy, full latency under the closed one.

        (Measured as a cycle delta rather than via ``reset_stats``,
        which now deliberately precharges the row buffers between
        measurement phases.)
        """
        closed = Machine(MachineConfig())
        opened = Machine(MachineConfig(dram_policy="open"))
        deltas = {}
        for m in (closed, opened):
            m.load_word_uncached(0x10000)
            warm = m.stats.cycles
            m.load_word_uncached(0x10040)  # same row
            deltas[m] = m.stats.cycles - warm
        assert deltas[closed] == closed.dram.latency
        assert deltas[opened] == opened.dram.row_hit_latency

    def test_reset_stats_precharges_open_rows(self):
        """reset_stats forgets open-row state: the first measured
        access after a reset pays the full (conflict) latency even if
        warm-up left its row open."""
        m = Machine(MachineConfig(dram_policy="open"))
        m.load_word_uncached(0x10000)  # warm-up opens the row
        assert m.dram.open_row(m.dram.bank_of(0x10000)) is not None
        m.reset_stats()
        assert m.dram.open_row(m.dram.bank_of(0x10000)) is None
        m.load_word_uncached(0x10040)  # same row, but freshly precharged
        assert m.stats.cycles == m.dram.latency
        assert m.dram.stats.row_conflicts == 1


class TestAttackerLatencySignals:
    """The attacker API returns the latencies its primitives cost.

    Regression: `attacker_flush` used to drop the dirty-write-back
    latency `flush_line` returns, and `attacker_evict` collapsed its
    eviction to a bare bool — so Flush+Reload / Evict+Time models
    could never observe write-back cost.
    """

    def test_flush_of_dirty_line_returns_writeback_latency(self, machine):
        machine.store_word(0x10000, 7)  # dirty in the L1d
        latency = machine.attacker_flush(0x10000)
        assert latency == machine.dram.latency
        assert machine.hierarchy.where(0x10000) == []

    def test_flush_of_clean_or_absent_line_is_free(self, machine):
        machine.load_word(0x10000)
        assert machine.attacker_flush(0x10000) == 0
        assert machine.attacker_flush(0x20000) == 0  # never cached

    def test_flush_latency_distinguishes_dirty_from_clean(self, machine):
        """The Flush+Flush signal: flush timing alone separates a line
        the victim wrote from one it only read."""
        machine.load_word(0x10000)   # victim read
        machine.store_word(0x20000, 1)  # victim write
        read_line = machine.attacker_flush(0x10000)
        written_line = machine.attacker_flush(0x20000)
        assert written_line > read_line == 0

    def test_evict_returns_result_with_latency(self, machine):
        machine.store_word(0x10000, 7)
        # drop the clean lower-level copies so the dirty L1d line has
        # nowhere to land but DRAM
        machine.l2.invalidate(0x10000)
        machine.llc.invalidate(0x10000)
        result = machine.attacker_evict("L1D", 0x10000)
        assert result  # evicted: truthy, as before
        assert result.latency == machine.dram.latency
        absent = machine.attacker_evict("L1D", 0x10000)
        assert not absent and absent.latency == 0
