"""BIA structure: allocation, monitoring, and the subset invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.bia import BIA, BIAEntry
from repro.errors import ConfigurationError
from repro.memory import address as am

LINE = params.LINE_SIZE
PAGE = params.PAGE_SIZE


def attached_pair(entries=16, assoc=4):
    cache = SetAssociativeCache("L1D", 16 * 1024, 4, 2)
    bia = BIA(entries=entries, assoc=assoc)
    bia.attach(cache)
    return cache, bia


class TestEntry:
    def test_bit_operations(self):
        e = BIAEntry(page_idx=1)
        e.set_exist(3)
        assert e.existence == 0b1000
        e.set_dirty(5)
        assert e.existence == 0b101000 and e.dirtiness == 0b100000
        e.clear_exist(5)
        assert e.existence == 0b1000 and e.dirtiness == 0

    def test_clear_dirty_keeps_existence(self):
        e = BIAEntry(page_idx=1)
        e.set_dirty(2)
        e.clear_dirty(2)
        assert e.existence == 0b100 and e.dirtiness == 0


class TestAllocation:
    def test_access_allocates_zeroed(self):
        _, bia = attached_pair()
        entry = bia.access(5)
        assert entry.page_idx == 5
        assert entry.existence == 0 and entry.dirtiness == 0
        assert bia.stats.allocations == 1

    def test_access_hit_reuses(self):
        _, bia = attached_pair()
        e1 = bia.access(5)
        e2 = bia.access(5)
        assert e1 is e2
        assert bia.stats.hits == 1

    def test_lookup_is_passive(self):
        _, bia = attached_pair()
        assert bia.lookup(5) is None
        assert bia.stats.allocations == 0

    def test_lru_eviction_within_set(self):
        _, bia = attached_pair(entries=8, assoc=2)  # 4 sets
        # pages 0, 4, 8 all map to set 0; assoc 2 -> third evicts first
        bia.access(0)
        bia.access(4)
        bia.access(0)  # refresh 0
        bia.access(8)
        assert bia.lookup(4) is None
        assert bia.lookup(0) is not None
        assert bia.stats.evictions == 1

    def test_reallocated_entry_is_zeroed(self):
        cache, bia = attached_pair(entries=8, assoc=2)
        entry = bia.access(0)
        cache.fill(0)  # page 0, line 0
        assert entry.existence != 0
        bia.access(4)
        bia.access(8)  # evicts page 0
        fresh = bia.access(0)
        assert fresh.existence == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BIA(entries=0)
        with pytest.raises(ConfigurationError):
            BIA(entries=10, assoc=4)  # not divisible
        with pytest.raises(ConfigurationError):
            BIA(entries=24, assoc=4)  # 6 sets, not a power of two


class TestMonitoring:
    def test_fill_sets_existence(self):
        cache, bia = attached_pair()
        entry = bia.access(am.page_index(0x3040))
        cache.fill(0x3040)
        assert entry.existence == 1 << am.line_in_page(0x3040)

    def test_fill_without_entry_is_ignored(self):
        cache, bia = attached_pair()
        cache.fill(0x3040)
        assert bia.lookup(am.page_index(0x3040)) is None

    def test_eviction_clears_bits(self):
        cache, bia = attached_pair()
        entry = bia.access(0)
        cache.fill(0x40, dirty=True)
        assert entry.existence and entry.dirtiness
        cache.invalidate(0x40)
        assert entry.existence == 0 and entry.dirtiness == 0

    def test_dirty_transition_tracked(self):
        cache, bia = attached_pair()
        entry = bia.access(0)
        cache.fill(0x40)
        assert entry.dirtiness == 0
        cache.set_dirty(0x40)
        assert entry.dirtiness == 1 << 1

    def test_clean_transition_tracked(self):
        cache, bia = attached_pair()
        entry = bia.access(0)
        cache.fill(0x40, dirty=True)
        cache.clean(0x40)
        assert entry.dirtiness == 0
        assert entry.existence == 1 << 1

    def test_hit_updates_existing_entry(self):
        cache, bia = attached_pair()
        cache.fill(0x40)  # before the BIA entry exists
        entry = bia.access(0)
        assert entry.existence == 0  # under-approximation
        cache.access(0x40)  # a hit teaches the BIA
        assert entry.existence == 1 << 1

    def test_suppressed_hit_is_ignored(self):
        """Secret-dependent (LRU-suppressed) hits must not teach the BIA."""
        cache, bia = attached_pair()
        cache.fill(0x40)
        entry = bia.access(0)
        cache.access(0x40, update_replacement=False)
        assert entry.existence == 0

    def test_other_cache_events_ignored(self):
        cache, bia = attached_pair()
        other = SetAssociativeCache("L2", 16 * 1024, 4, 15)
        other.events.subscribe(bia)
        bia.access(0)
        other.fill(0x40)
        assert bia.lookup(0).existence == 0


class TestSubsetInvariant:
    def test_check_subset_detects_truth(self):
        cache, bia = attached_pair()
        bia.access(0)
        cache.fill(0x40, dirty=True)
        assert bia.check_subset_of(cache)

    def test_check_subset_detects_violation(self):
        cache, bia = attached_pair()
        entry = bia.access(0)
        entry.set_exist(1)  # claim line 1 present without filling it
        assert not bia.check_subset_of(cache)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["fill", "fill_dirty", "inval", "dirty", "ct"]),
                st.integers(min_value=0, max_value=127),
            ),
            max_size=150,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_subset_invariant_under_random_traffic(self, ops):
        """The safety property of Sec. 5.2: the BIA never over-reports."""
        cache, bia = attached_pair(entries=8, assoc=2)
        for op, line_idx in ops:
            line_addr = line_idx * LINE
            if op == "fill":
                cache.fill(line_addr)
            elif op == "fill_dirty":
                cache.fill(line_addr, dirty=True)
            elif op == "inval":
                cache.invalidate(line_addr)
            elif op == "dirty":
                cache.set_dirty(line_addr)
            elif op == "ct":
                bia.access(am.page_index(line_addr))
        assert bia.check_subset_of(cache)
