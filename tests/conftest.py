"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.machine import Machine, MachineConfig


@pytest.fixture
def machine() -> Machine:
    """A fresh Table-1 machine with the BIA in the L1d cache."""
    return Machine(MachineConfig())


@pytest.fixture
def l2_machine() -> Machine:
    """A fresh Table-1 machine with the BIA in the L2 cache."""
    return Machine(MachineConfig(bia_level="L2"))


@pytest.fixture
def tiny_machine() -> Machine:
    """A machine with very small caches, for eviction-heavy tests.

    L1D: 4 KiB (2-way, 32 sets) so conflict/capacity behaviour is easy
    to provoke; L2/LLC scaled down proportionally.
    """
    return Machine(
        MachineConfig(
            l1d_size=4 * 1024,
            l1d_assoc=2,
            l2_size=16 * 1024,
            l2_assoc=4,
            llc_size=64 * 1024,
            llc_assoc=8,
            bia_entries=16,
            bia_assoc=4,
        )
    )


@pytest.fixture
def machine_factory():
    """Callable producing identical fresh machines (security tests)."""
    return lambda: Machine(MachineConfig())
