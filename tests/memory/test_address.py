"""Address arithmetic: the bit-field slicing every algorithm relies on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import params
from repro.errors import AlignmentError
from repro.memory import address as am

ADDRS = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestLineMath:
    def test_line_index(self):
        assert am.line_index(0) == 0
        assert am.line_index(63) == 0
        assert am.line_index(64) == 1
        assert am.line_index(0x1048) == 0x1048 // 64

    def test_line_base(self):
        assert am.line_base(0x1048) == 0x1040
        assert am.line_base(0x1040) == 0x1040
        assert am.line_base(0x107F) == 0x1040

    def test_line_offset(self):
        assert am.line_offset(0x1048) == 8
        assert am.line_offset(0x1040) == 0
        assert am.line_offset(0x107F) == 0x3F

    @given(ADDRS)
    def test_decompose_recompose(self, addr):
        assert am.line_base(addr) + am.line_offset(addr) == addr

    @given(ADDRS)
    def test_line_base_aligned(self, addr):
        assert am.line_base(addr) % params.LINE_SIZE == 0


class TestPageMath:
    def test_page_index(self):
        assert am.page_index(0) == 0
        assert am.page_index(4095) == 0
        assert am.page_index(4096) == 1

    def test_page_offset(self):
        assert am.page_offset(0x1048) == 0x48
        assert am.page_offset(0x2FFF) == 0xFFF

    def test_line_in_page_bounds(self):
        assert am.line_in_page(0x1000) == 0
        assert am.line_in_page(0x1FC0) == 63
        assert am.line_in_page(0x1048) == 1

    @given(ADDRS)
    def test_line_in_page_range(self, addr):
        assert 0 <= am.line_in_page(addr) < params.LINES_PER_PAGE

    @given(ADDRS)
    def test_page_decompose(self, addr):
        assert am.page_base(addr) + am.page_offset(addr) == addr


class TestCompose:
    def test_compose_example(self):
        # generateAddrs formula: page | (i << 6) | offset
        assert am.compose(1, 2, 8) == 0x1000 + 0x80 + 8

    def test_compose_rejects_bad_line(self):
        with pytest.raises(ValueError):
            am.compose(0, 64, 0)
        with pytest.raises(ValueError):
            am.compose(0, -1, 0)

    def test_compose_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            am.compose(0, 0, 64)

    @given(ADDRS)
    def test_compose_inverts_decompose(self, addr):
        rebuilt = am.compose(
            am.page_index(addr), am.line_in_page(addr), am.line_offset(addr)
        )
        assert rebuilt == addr

    def test_same_page_address(self):
        # Alg. 2 line 4: page_i | ld_addr[11:0]
        assert am.same_page_address(3, 0x1ABC) == 3 * 4096 + 0xABC

    @given(ADDRS, st.integers(min_value=0, max_value=1 << 20))
    def test_same_page_address_preserves_offset(self, addr, page):
        relocated = am.same_page_address(page, addr)
        assert am.page_offset(relocated) == am.page_offset(addr)
        assert am.page_index(relocated) == page


class TestAlignment:
    def test_check_aligned_ok(self):
        am.check_aligned(0x1000, 4)
        am.check_aligned(0x1004, 4)

    def test_check_aligned_rejects_misaligned(self):
        with pytest.raises(AlignmentError):
            am.check_aligned(0x1002, 4)

    def test_check_aligned_rejects_non_power_of_two(self):
        with pytest.raises(AlignmentError):
            am.check_aligned(0x1000, 3)


class TestIterators:
    def test_iter_lines_spans_partial_lines(self):
        lines = list(am.iter_lines(0x1030, 0x40))  # crosses a boundary
        assert lines == [0x1000, 0x1040]

    def test_iter_lines_exact(self):
        assert list(am.iter_lines(0x1000, 128)) == [0x1000, 0x1040]

    def test_iter_lines_empty(self):
        assert list(am.iter_lines(0x1000, 0)) == []

    def test_iter_pages(self):
        assert list(am.iter_pages(0x1800, 0x1000)) == [1, 2]

    def test_iter_pages_empty(self):
        assert list(am.iter_pages(0x1000, 0)) == []

    @given(ADDRS, st.integers(min_value=1, max_value=1 << 16))
    def test_iter_lines_cover_range(self, base, size):
        lines = list(am.iter_lines(base, size))
        assert lines[0] <= base < lines[0] + params.LINE_SIZE
        last = lines[-1]
        assert last <= base + size - 1 < last + params.LINE_SIZE
        # contiguous, strictly increasing by one line
        assert all(
            b - a == params.LINE_SIZE for a, b in zip(lines, lines[1:])
        )
