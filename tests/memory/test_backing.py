"""Backing memory and allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.errors import AlignmentError, AllocationError, MemoryError_
from repro.memory.backing import Allocator, MainMemory


class TestRawBytes:
    def test_untouched_reads_zero(self):
        mem = MainMemory()
        assert mem.read(0x5000, 16) == b"\x00" * 16

    def test_write_read_roundtrip(self):
        mem = MainMemory()
        mem.write(0x1234, b"hello world")
        assert mem.read(0x1234, 11) == b"hello world"

    def test_write_crossing_page_boundary(self):
        mem = MainMemory()
        data = bytes(range(100))
        mem.write(params.PAGE_SIZE - 50, data)
        assert mem.read(params.PAGE_SIZE - 50, 100) == data

    def test_read_crossing_untouched_page(self):
        mem = MainMemory()
        mem.write(params.PAGE_SIZE - 2, b"ab")
        got = mem.read(params.PAGE_SIZE - 4, 8)
        assert got == b"\x00\x00ab\x00\x00\x00\x00"

    def test_negative_read_rejected(self):
        with pytest.raises(MemoryError_):
            MainMemory().read(0, -1)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 16),
                st.binary(min_size=1, max_size=64),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_matches_flat_reference(self, writes):
        mem = MainMemory()
        reference = bytearray(1 << 17)
        for addr, data in writes:
            mem.write(addr, data)
            reference[addr : addr + len(data)] = data
        for addr, data in writes:
            assert mem.read(addr, len(data)) == bytes(
                reference[addr : addr + len(data)]
            )


class TestWords:
    def test_word_roundtrip(self):
        mem = MainMemory()
        mem.write_word(0x1000, 0xDEADBEEF)
        assert mem.read_word(0x1000) == 0xDEADBEEF

    def test_word_wraps_modulo_size(self):
        mem = MainMemory()
        mem.write_word(0x1000, 0x1_0000_0001)
        assert mem.read_word(0x1000) == 1

    def test_word_is_little_endian(self):
        mem = MainMemory()
        mem.write_word(0x1000, 0x01020304)
        assert mem.read(0x1000, 4) == b"\x04\x03\x02\x01"

    def test_misaligned_word_rejected(self):
        mem = MainMemory()
        with pytest.raises(AlignmentError):
            mem.read_word(0x1002)
        with pytest.raises(AlignmentError):
            mem.write_word(0x1001, 5)

    def test_8_byte_words(self):
        mem = MainMemory()
        mem.write_word(0x1000, 0xAABBCCDD11223344, size=8)
        assert mem.read_word(0x1000, size=8) == 0xAABBCCDD11223344


class TestLines:
    def test_line_roundtrip(self):
        mem = MainMemory()
        data = bytes(range(64))
        mem.write_line(0x1000, data)
        assert mem.read_line(0x1000) == data

    def test_line_rejects_misaligned(self):
        with pytest.raises(AlignmentError):
            MainMemory().read_line(0x1010)

    def test_line_rejects_wrong_size(self):
        with pytest.raises(MemoryError_):
            MainMemory().write_line(0x1000, b"short")

    def test_touched_pages(self):
        mem = MainMemory()
        mem.write(0x1000, b"x")
        mem.write(0x5000, b"y")
        assert sorted(mem.touched_pages()) == [1, 5]


class TestAllocator:
    def test_page_aligned_allocations(self):
        alloc = Allocator(MainMemory())
        a = alloc.alloc(100)
        b = alloc.alloc(1)
        assert a % params.PAGE_SIZE == 0
        assert b % params.PAGE_SIZE == 0
        assert b == a + params.PAGE_SIZE  # 100 bytes rounds up to a page

    def test_multi_page_allocation(self):
        alloc = Allocator(MainMemory())
        a = alloc.alloc(params.PAGE_SIZE + 1)
        b = alloc.alloc(1)
        assert b - a == 2 * params.PAGE_SIZE

    def test_alloc_words(self):
        alloc = Allocator(MainMemory())
        a = alloc.alloc_words(1024)  # exactly one page
        b = alloc.alloc_words(1)
        assert b - a == params.PAGE_SIZE

    def test_zero_alloc_rejected(self):
        with pytest.raises(AllocationError):
            Allocator(MainMemory()).alloc(0)

    def test_misaligned_base_rejected(self):
        with pytest.raises(AllocationError):
            Allocator(MainMemory(), base=100)

    def test_base_avoids_null(self):
        alloc = Allocator(MainMemory())
        assert alloc.alloc(8) >= 0x10000
