"""DRAM model: latency, counters, closed-row granularity."""

import pytest

from repro import params
from repro.errors import ConfigurationError
from repro.memory.dram import DRAM


class TestDRAM:
    def test_read_latency(self):
        dram = DRAM(latency=200)
        assert dram.read_line(0x1000) == 200

    def test_write_latency(self):
        dram = DRAM(latency=150)
        assert dram.write_line(0x1000) == 150

    def test_counters(self):
        dram = DRAM()
        dram.read_line(0x1000)
        dram.read_line(0x1040)
        dram.write_line(0x2000)
        assert dram.stats.reads == 2
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 3

    def test_row_granularity_is_page(self):
        dram = DRAM()
        # Every line of one page maps to one row: the memory-controller
        # leak unit the Sec. 6.5 optimization relies on.
        rows = {dram.row_of(0x3000 + i * params.LINE_SIZE) for i in range(64)}
        assert len(rows) == 1
        assert dram.row_of(0x3000) != dram.row_of(0x4000)

    def test_rows_touched_tracking(self):
        dram = DRAM()
        dram.read_line(0x1000)
        dram.read_line(0x1040)  # same row
        dram.write_line(0x9000)  # different row
        assert len(dram.stats.rows_touched) == 2

    def test_reset(self):
        dram = DRAM()
        dram.read_line(0x1000)
        dram.stats.reset()
        assert dram.stats.accesses == 0
        assert not dram.stats.rows_touched

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(latency=0)

    def test_invalid_row_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(row_size=100)  # not line-aligned


class TestOpenPagePolicy:
    def test_row_hit_is_faster(self):
        dram = DRAM(policy="open")
        first = dram.read_line(0x3000)       # conflict (cold)
        second = dram.read_line(0x3040)      # same row: hit
        assert first == dram.latency
        assert second == dram.row_hit_latency

    def test_row_conflict_pays_full_latency(self):
        dram = DRAM(policy="open", banks=1)
        dram.read_line(0x3000)
        conflict = dram.read_line(0x3000 + dram.row_size * dram.banks)
        assert conflict == dram.latency

    def test_banks_hold_independent_rows(self):
        dram = DRAM(policy="open", banks=2)
        dram.read_line(0x0000)                      # bank 0, row 0
        dram.read_line(0x0000 + dram.row_size)      # bank 1, row 1
        assert dram.read_line(0x0040) == dram.row_hit_latency
        assert (
            dram.read_line(0x0040 + dram.row_size) == dram.row_hit_latency
        )

    def test_hit_conflict_counters(self):
        dram = DRAM(policy="open")
        dram.read_line(0x3000)
        dram.read_line(0x3040)
        dram.read_line(0x3000 + dram.row_size * dram.banks)
        assert dram.stats.row_hits == 1
        assert dram.stats.row_conflicts == 2

    def test_open_row_introspection(self):
        dram = DRAM(policy="open")
        dram.read_line(0x3000)
        assert dram.open_row(dram.bank_of(0x3000)) == dram.row_of(0x3000)

    def test_closed_policy_is_constant_time(self):
        """The Sec. 6.5 property: same latency regardless of locality."""
        dram = DRAM(policy="closed")
        latencies = {
            dram.read_line(addr)
            for addr in (0x3000, 0x3040, 0x3000, 0x9000, 0x3080)
        }
        assert latencies == {dram.latency}

    def test_open_policy_leaks_row_locality(self):
        """DRAMA in miniature: an attacker timing its own access after
        the victim's learns whether the victim used the same row."""

        def attacker_latency(victim_addr):
            dram = DRAM(policy="open", banks=1)
            dram.read_line(victim_addr)          # victim access
            return dram.read_line(0x3000)        # attacker probe, row 3

        same_row = attacker_latency(0x3040)       # victim in row 3
        other_row = attacker_latency(0x3000 + 4096 * 8)
        assert same_row < other_row               # locality leaked

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(policy="adaptive")

    def test_invalid_hit_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(latency=100, row_hit_latency=150)
