"""Memory-controller contention channel (Sec. 2.2)."""

from repro.core.machine import Machine, MachineConfig
from repro.ct.bia_ops import BIAContext
from repro.ct.context import InsecureContext
from repro.memory.controller import MemoryController, victim_traffic_profile
from repro.memory.dram import DRAM
from repro.workloads import WORKLOADS


class TestController:
    def test_uncontended_probe_has_no_queue_delay(self):
        ctrl = MemoryController(DRAM())
        assert ctrl.probe(now=0.0) == ctrl.dram.latency

    def test_back_to_back_requests_queue(self):
        ctrl = MemoryController(DRAM(latency=200))
        first = ctrl.read_line(0x1000, now=0.0)
        second = ctrl.read_line(0x2000, now=10.0)  # controller busy
        assert first == 200
        assert second == 190 + 200  # wait out the remaining busy time

    def test_spaced_requests_do_not_queue(self):
        ctrl = MemoryController(DRAM(latency=200))
        ctrl.read_line(0x1000, now=0.0)
        assert ctrl.read_line(0x2000, now=500.0) == 200

    def test_probe_reveals_victim_activity(self):
        """The [42] attack: a probe right after victim traffic sees a
        queueing delay; a probe into silence sees none."""
        ctrl = MemoryController(DRAM(latency=200))
        ctrl.read_line(0x1000, now=1000.0)  # victim request
        busy_probe = ctrl.probe(now=1050.0)
        idle_probe = ctrl.probe(now=5000.0)
        assert busy_probe > idle_probe == 200

    def test_contention_counters(self):
        ctrl = MemoryController(DRAM(latency=200))
        ctrl.read_line(0x1000, now=0.0)
        ctrl.write_line(0x2000, now=50.0)
        assert ctrl.stats.requests == 2
        assert ctrl.stats.contended == 1
        assert ctrl.stats.total_queue_delay == 150.0

    def test_probe_log(self):
        ctrl = MemoryController(DRAM())
        ctrl.probe(now=3.0)
        assert ctrl.stats.probe_log == [(3.0, 0.0)]


class TestVictimTrafficProfile:
    def _histogram_victim(self, scheme, secret):
        def run(machine):
            ctx = (
                InsecureContext(machine)
                if scheme == "insecure"
                else BIAContext(machine)
            )
            WORKLOADS["histogram"].run(ctx, 300, secret)

        return run

    def test_profile_counts_dram_traffic(self):
        machine = Machine(MachineConfig())
        profile = victim_traffic_profile(
            machine, self._histogram_victim("insecure", 1)
        )
        assert sum(profile) > 0

    def test_taps_are_removed_after_profiling(self):
        machine = Machine(MachineConfig())
        victim_traffic_profile(machine, self._histogram_victim("insecure", 1))
        assert machine.dram.read_line.__name__ == "read_line"

    def test_mitigated_traffic_profile_is_secret_independent(self):
        """Sec. 2.4's claim: after linearization, memory-controller
        observations carry no secret (identical traffic timelines)."""
        profiles = set()
        for secret in (1, 2, 3):
            machine = Machine(MachineConfig())
            profiles.add(
                tuple(
                    victim_traffic_profile(
                        machine, self._histogram_victim("bia", secret)
                    )
                )
            )
        assert len(profiles) == 1

    def test_secret_dependent_volume_is_visible(self):
        """What the channel catches: a victim whose DRAM traffic
        VOLUME depends on the secret (e.g. a secret trip count — the
        class of leak the taint analysis rejects outright)."""

        def leaky_victim(secret):
            def run(machine):
                for i in range(secret * 5):
                    machine.load_word_uncached(0x10000 + 64 * i)

            return run

        profiles = {
            tuple(
                victim_traffic_profile(
                    Machine(MachineConfig()), leaky_victim(secret)
                )
            )
            for secret in (1, 2, 3)
        }
        assert len(profiles) == 3

    def test_warm_insecure_histogram_is_controller_silent(self):
        """Conversely: at cache-resident sizes even the INSECURE
        histogram has secret-independent DRAM traffic — the paper's
        motivation table's 'LL misses barely move' row.  The leak
        lives in the cache, not the controller."""
        profiles = {
            tuple(
                victim_traffic_profile(
                    Machine(MachineConfig()),
                    self._histogram_victim("insecure", secret),
                )
            )
            for secret in (1, 2, 3)
        }
        assert len(profiles) == 1
