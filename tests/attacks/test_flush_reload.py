"""Flush+Reload against a shared lookup table."""

from repro import params
from repro.attacks.flush_reload import FlushReloadAttacker
from repro.core.machine import Machine, MachineConfig
from repro.ct.bia_ops import BIAContext
from repro.ct.context import InsecureContext
from repro.ct.linearize import SoftwareCTContext

LINE = params.LINE_SIZE


def setup(make_ctx, n_lines=16):
    machine = Machine(MachineConfig())
    ctx = make_ctx(machine)
    base = machine.allocator.alloc(n_lines * LINE, "table")
    for i in range(n_lines * LINE // 4):
        machine.memory.write_word(base + 4 * i, i)
    ds = ctx.register_ds(base, n_lines * LINE, "table")
    lines = [base + i * LINE for i in range(n_lines)]
    return machine, ctx, ds, base, lines


class TestMechanics:
    def test_flush_empties_hierarchy(self):
        machine, ctx, ds, base, lines = setup(InsecureContext)
        machine.load_word(base)
        attacker = FlushReloadAttacker(machine, lines)
        attacker.flush()
        assert machine.hierarchy.where(base) == []

    def test_reload_latency_classifies(self):
        machine, ctx, ds, base, lines = setup(InsecureContext)
        attacker = FlushReloadAttacker(machine, lines)
        attacker.flush()
        machine.load_word(base)  # victim touches line 0 only
        latencies = attacker.reload()
        hot = attacker.hot_lines(latencies)
        assert hot == [base]


class TestAgainstMitigations:
    def _touched(self, make_ctx, secret_index):
        machine, ctx, ds, base, lines = setup(make_ctx)
        attacker = FlushReloadAttacker(machine, lines)
        return tuple(
            attacker.attack(
                lambda: ctx.load(ds, base + 4 * secret_index)
            )
        )

    def test_insecure_reveals_index_line(self):
        a = self._touched(InsecureContext, 0)
        b = self._touched(InsecureContext, 200)
        assert a != b
        assert len(a) == 1  # exactly the secret's line

    def test_ct_touches_everything(self):
        a = self._touched(lambda m: SoftwareCTContext(m), 0)
        b = self._touched(lambda m: SoftwareCTContext(m), 200)
        assert a == b
        assert len(a) == 16  # the whole DS

    def test_bia_touches_everything(self):
        a = self._touched(BIAContext, 0)
        b = self._touched(BIAContext, 200)
        assert a == b
        assert len(a) == 16


class TestFlushLatencySignal:
    """`flush()` reports per-line clflush latencies (the Flush+Flush
    signal): a dirty line's flush pays the DRAM write-back, a clean or
    absent line's flush is free."""

    def test_flush_latencies_mark_victim_written_lines(self):
        machine = Machine(MachineConfig())
        read_line = 0x10000
        written_line = 0x10040
        machine.load_word(read_line)
        machine.store_word(written_line, 9)
        attacker = FlushReloadAttacker(
            machine, [read_line, written_line, 0x20000]
        )
        latencies = attacker.flush()
        assert latencies[written_line] == machine.dram.latency
        assert latencies[read_line] == 0
        assert latencies[0x20000] == 0  # never cached
        # second flush: everything is gone, all free
        assert set(attacker.flush().values()) == {0}
