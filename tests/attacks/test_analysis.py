"""Leakage analysis helpers."""

import pytest

from repro.attacks.analysis import (
    Observation,
    check_trace_equivalence,
    distinguishability,
    observe_run,
    set_access_matrix,
)
from repro.core.machine import Machine, MachineConfig
from repro.errors import SecurityViolationError


def factory():
    return Machine(MachineConfig())


class TestDistinguishability:
    def _obs(self, secret, digest):
        return Observation(secret, digest, {})

    def test_all_equal_is_zero(self):
        obs = [self._obs(i, "same") for i in range(5)]
        assert distinguishability(obs) == 0.0

    def test_all_distinct_is_one(self):
        obs = [self._obs(i, f"d{i}") for i in range(5)]
        assert distinguishability(obs) == 1.0

    def test_partial(self):
        obs = [self._obs(0, "a"), self._obs(1, "a"), self._obs(2, "b")]
        assert distinguishability(obs) == pytest.approx(2 / 3)

    def test_single_observation(self):
        assert distinguishability([self._obs(0, "x")]) == 0.0


class TestCheckTraceEquivalence:
    def test_secret_independent_victim_passes(self):
        def victim_factory(secret):
            return lambda machine: machine.load_word(0x10000)

        obs = check_trace_equivalence(factory, victim_factory, [1, 2, 3])
        assert len(obs) == 3
        assert distinguishability(obs) == 0.0

    def test_secret_dependent_victim_raises(self):
        def victim_factory(secret):
            return lambda machine: machine.load_word(0x10000 + 4096 * secret)

        with pytest.raises(SecurityViolationError):
            check_trace_equivalence(factory, victim_factory, [1, 2])

    def test_raise_can_be_disabled(self):
        def victim_factory(secret):
            return lambda machine: machine.load_word(0x10000 + 4096 * secret)

        obs = check_trace_equivalence(
            factory, victim_factory, [1, 2], raise_on_leak=False
        )
        assert distinguishability(obs) == 1.0


class TestObserveRun:
    def test_set_accesses_recorded(self):
        obs = observe_run(factory, lambda m: m.load_word(0x10000), 1)
        l1_counts = obs.set_accesses["L1D"]
        assert sum(l1_counts.values()) == 1

    def test_levels_selectable(self):
        obs = observe_run(
            factory, lambda m: m.load_word(0x10000), 1, levels=("L2",)
        )
        assert list(obs.set_accesses) == ["L2"]


class TestSetAccessMatrix:
    def test_matrix_shape(self):
        obs = [
            Observation(1, "x", {"L2": {3: 10, 4: 2}}),
            Observation(2, "y", {"L2": {3: 7}}),
        ]
        matrix = set_access_matrix(obs, "L2", [3, 4, 5])
        assert matrix == [(1, [10, 2, 0]), (2, [7, 0, 0])]


class TestLeakedBits:
    def _obs(self, secret, digest, sets=None):
        return Observation(secret, digest, {"L1D": sets or {}})

    def test_no_leak_is_zero_bits(self):
        from repro.attacks.analysis import leaked_bits

        obs = [self._obs(i, "same") for i in range(8)]
        assert leaked_bits(obs) == 0.0

    def test_full_leak_is_log2_n(self):
        from repro.attacks.analysis import leaked_bits

        obs = [self._obs(i, f"d{i}") for i in range(8)]
        assert leaked_bits(obs) == pytest.approx(3.0)

    def test_partial_leak(self):
        from repro.attacks.analysis import leaked_bits

        obs = [self._obs(0, "a"), self._obs(1, "a"), self._obs(2, "b"), self._obs(3, "b")]
        assert leaked_bits(obs) == pytest.approx(1.0)

    def test_empty(self):
        from repro.attacks.analysis import leaked_bits

        assert leaked_bits([]) == 0.0


class TestVaryingSets:
    def test_detects_spread(self):
        from repro.attacks.analysis import varying_sets

        obs = [
            Observation(1, "x", {"L1D": {3: 10, 4: 2}}),
            Observation(2, "y", {"L1D": {3: 7, 4: 2}}),
        ]
        assert varying_sets(obs, "L1D") == {3: 3}

    def test_missing_sets_count_as_zero(self):
        from repro.attacks.analysis import varying_sets

        obs = [
            Observation(1, "x", {"L1D": {5: 4}}),
            Observation(2, "y", {"L1D": {}}),
        ]
        assert varying_sets(obs, "L1D") == {5: 4}

    def test_uniform_counts_empty(self):
        from repro.attacks.analysis import varying_sets

        obs = [
            Observation(1, "x", {"L1D": {3: 2}}),
            Observation(2, "y", {"L1D": {3: 2}}),
        ]
        assert varying_sets(obs, "L1D") == {}
