"""Prime+Probe: recovers the insecure victim's set, blinded by mitigation."""

from repro import params
from repro.attacks.prime_probe import PrimeProbeAttacker
from repro.core.machine import Machine, MachineConfig
from repro.ct.bia_ops import BIAContext
from repro.ct.context import InsecureContext
from repro.ct.linearize import SoftwareCTContext

LINE = params.LINE_SIZE


def small_machine():
    return Machine(
        MachineConfig(l1d_size=4 * 1024, l1d_assoc=2)  # 32 L1 sets
    )


class TestMechanics:
    def test_prime_fills_sets(self):
        machine = small_machine()
        attacker = PrimeProbeAttacker(machine, "L1D")
        attacker.prime(sets=[3])
        contents = machine.l1d.set_contents(3)
        assert len(contents) == machine.l1d.assoc

    def test_probe_clean_after_no_victim(self):
        machine = small_machine()
        attacker = PrimeProbeAttacker(machine, "L1D")
        attacker.prime(sets=[3])
        result = attacker.probe()
        assert result.set_misses[3] == 0

    def test_probe_detects_victim_fill(self):
        machine = small_machine()
        attacker = PrimeProbeAttacker(machine, "L1D")
        victim_addr = 0x10000 + 5 * LINE  # maps to set 5
        result = attacker.attack(
            lambda: machine.load_word(victim_addr), sets=range(32)
        )
        assert result.touched_sets() == [5]


class TestAgainstMitigations:
    def _run(self, make_ctx, secret_bin):
        """One Prime+Probe round against a single histogram-style update."""
        machine = small_machine()
        ctx = make_ctx(machine)
        base = machine.allocator.alloc_words(512)  # 32 lines = covers sets
        for i in range(512):
            machine.memory.write_word(base + 4 * i, 0)
        ds = ctx.register_ds(base, 2048, "bins")
        attacker = PrimeProbeAttacker(machine, "L1D")
        result = attacker.attack(
            lambda: ctx.rmw(ds, base + 4 * secret_bin, lambda v: v + 1),
            sets=range(32),
        )
        return tuple(result.touched_sets())

    def test_insecure_reveals_the_bin(self):
        seen = {s: self._run(InsecureContext, s) for s in (16, 100, 400)}
        # different secrets -> different observable touched sets
        assert len(set(seen.values())) == 3

    def test_software_ct_is_uniform(self):
        seen = {self._run(lambda m: SoftwareCTContext(m), s) for s in (16, 100, 400)}
        assert len(seen) == 1

    def test_bia_is_uniform(self):
        seen = {self._run(BIAContext, s) for s in (16, 100, 400)}
        assert len(seen) == 1
