"""Eviction-set construction and use."""

from repro import params
from repro.attacks.eviction import (
    build_eviction_set,
    evict_with_set,
    occupancy_probe,
)
from repro.core.machine import Machine, MachineConfig

LINE = params.LINE_SIZE


def small_machine():
    return Machine(MachineConfig(l1d_size=4 * 1024, l1d_assoc=2))


class TestBuild:
    def test_set_congruence(self):
        machine = small_machine()
        target = 0x10000 + 7 * LINE
        ev_set = build_eviction_set(machine.l1d, target)
        target_set = machine.l1d.set_index(target)
        assert len(ev_set) == machine.l1d.assoc
        assert all(machine.l1d.set_index(a) == target_set for a in ev_set)

    def test_extra_ways(self):
        machine = small_machine()
        ev_set = build_eviction_set(machine.l1d, 0x10000, extra_ways=3)
        assert len(ev_set) == machine.l1d.assoc + 3

    def test_addresses_are_attacker_owned(self):
        machine = small_machine()
        ev_set = build_eviction_set(machine.l1d, 0x10000)
        assert all(a >= 0x5000_0000 for a in ev_set)


class TestEvict:
    def test_eviction_set_displaces_target(self):
        machine = small_machine()
        machine.load_word(0x10000)
        assert 0x10000 in machine.l1d
        evict_with_set(machine, "L1D", 0x10000)
        assert 0x10000 not in machine.l1d
        # like a real conflict eviction, deeper copies survive
        assert 0x10000 in machine.l2

    def test_matches_targeted_shortcut(self):
        """The realistic mechanism agrees with attacker_evict."""
        via_set = small_machine()
        via_set.load_word(0x10000)
        evict_with_set(via_set, "L1D", 0x10000)

        shortcut = small_machine()
        shortcut.load_word(0x10000)
        shortcut.attacker_evict("L1D", 0x10000)

        assert (0x10000 in via_set.l1d) == (0x10000 in shortcut.l1d)
        assert via_set.hierarchy.where(0x10000) == shortcut.hierarchy.where(
            0x10000
        )


class TestOccupancyProbe:
    def test_probe_counts_victim_displacement(self):
        machine = small_machine()
        target = 0x10000 + 3 * LINE
        ev_set = evict_with_set(machine, "L1D", target)  # = prime
        assert occupancy_probe(machine, "L1D", ev_set) == 0
        machine.load_word(target)  # victim displaces one way
        # At least one probe miss; probe refills can cascade extra
        # misses within the set (the classic probe-order artifact),
        # so the signal is ">= 1", not exactly 1.
        assert occupancy_probe(machine, "L1D", ev_set) >= 1

    def test_probe_silent_without_victim(self):
        machine = small_machine()
        ev_set = evict_with_set(machine, "L1D", 0x10000)
        assert occupancy_probe(machine, "L1D", ev_set) == 0
        assert occupancy_probe(machine, "L1D", ev_set) == 0
