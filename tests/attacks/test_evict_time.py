"""Evict+Time: timing the victim after targeted set evictions."""

from repro import params
from repro.attacks.evict_time import EvictTimeAttacker
from repro.core.machine import Machine, MachineConfig
from repro.ct.context import InsecureContext
from repro.ct.linearize import SoftwareCTContext

LINE = params.LINE_SIZE


def small_machine():
    return Machine(MachineConfig(l1d_size=4 * 1024, l1d_assoc=2))  # 32 sets


class TestEvictTime:
    def test_insecure_victim_slows_on_its_set(self):
        machine = small_machine()
        ctx = InsecureContext(machine)
        base = machine.allocator.alloc_words(512)
        ds = ctx.register_ds(base, 2048, "t")
        target = base + 9 * LINE  # set 9
        attacker = EvictTimeAttacker(machine, "L1D")
        slowdown = attacker.attack(
            lambda: ctx.load(ds, target), sets=[5, 9, 20]
        )
        assert slowdown[9] > 0
        assert slowdown[5] == 0 and slowdown[20] == 0

    def test_ct_victim_slows_uniformly(self):
        """Linearized victims depend on every set equally: the eviction
        signal no longer singles out the secret's set."""
        machine = small_machine()
        ctx = SoftwareCTContext(machine)
        base = machine.allocator.alloc_words(512)
        ds = ctx.register_ds(base, 2048, "t")
        attacker = EvictTimeAttacker(machine, "L1D")
        slow_a = attacker.attack(
            lambda: ctx.load(ds, base + 9 * LINE), sets=[5, 9, 20]
        )
        # all probed sets hold DS lines -> all evictions cost the same
        assert slow_a[5] == slow_a[9] == slow_a[20] > 0

    def test_evict_set_clears_contents(self):
        machine = small_machine()
        machine.load_word(0x10000 + 3 * LINE)
        attacker = EvictTimeAttacker(machine, "L1D")
        attacker.evict_set(3)
        assert machine.l1d.set_contents(3) == []


class TestEvictionWritebackCost:
    """Evict+Time observes the dirty-write-back latency of its evictions.

    Regression: `evict_set` used to discard the latency that
    `attacker_evict` (and `CacheHierarchy.evict_line_from` beneath it)
    incurred writing dirty victim lines back, so the attacker's own
    eviction cost — a dirtiness side channel — was invisible.
    """

    def test_clean_set_evicts_for_free(self):
        machine = small_machine()
        machine.load_word(0x10000 + 3 * LINE)
        attacker = EvictTimeAttacker(machine, "L1D")
        assert attacker.evict_set(3) == 0

    def test_dirty_set_eviction_pays_the_writeback(self):
        machine = small_machine()
        addr = 0x10000 + 3 * LINE
        machine.store_word(addr, 7)  # dirty in the L1d
        # strip the clean lower-level copies: the write-back must go
        # all the way to DRAM, where its latency is unmistakable
        machine.l2.invalidate(addr)
        machine.llc.invalidate(addr)
        attacker = EvictTimeAttacker(machine, "L1D")
        cost = attacker.evict_set(3)
        assert cost == machine.dram.latency
        assert machine.l1d.set_contents(3) == []

    def test_writeback_cost_separates_written_from_read_sets(self):
        """The dirtiness signal end to end: identical eviction sweeps
        over a read set and a written set time differently."""
        machine = small_machine()
        read_addr = 0x10000 + 5 * LINE
        write_addr = 0x10000 + 9 * LINE
        machine.load_word(read_addr)
        machine.store_word(write_addr, 1)
        for addr in (read_addr, write_addr):
            machine.l2.invalidate(addr)
            machine.llc.invalidate(addr)
        attacker = EvictTimeAttacker(machine, "L1D")
        assert attacker.evict_set(9) > attacker.evict_set(5) == 0
