"""Symbolic term layer: simplification, evaluation, bit influence."""

import pytest

from repro.analysis.symrel import expr
from repro.analysis.symrel.expr import MASK32
from repro.lang import ir

pytestmark = pytest.mark.symrel


def k():
    return expr.var("k", side="A")


class TestInterning:
    def test_structural_equality_is_identity(self):
        a = expr.op("add", expr.var("x"), expr.const(1))
        b = expr.op("add", expr.var("x"), expr.const(1))
        assert a is b

    def test_sides_are_distinct(self):
        assert expr.var("k", side="A") is not expr.var("k", side="B")
        assert expr.var("k") is not expr.var("k", side="A")


class TestSimplification:
    def test_constant_folding(self):
        assert expr.op("add", expr.const(3), expr.const(4)).value == 7
        assert expr.op("sub", expr.const(0), expr.const(1)).value == MASK32

    def test_identities(self):
        x = k()
        assert expr.op("add", x, expr.const(0)) is x
        assert expr.op("mul", x, expr.const(1)) is x
        assert expr.op("xor", x, x).value == 0
        assert expr.op("sub", x, x).value == 0
        assert expr.op("and", x, expr.const(0)).value == 0
        assert expr.op("and", x, expr.const(MASK32)) is x

    def test_mod_pow2_becomes_and(self):
        t = expr.op("mod", k(), expr.const(64))
        assert t.kind == "op" and t.args[0] == "and"
        assert t.args[2].value == 63
        assert (t.lo, t.hi) == (0, 63)

    def test_div_pow2_becomes_shr(self):
        t = expr.op("div", k(), expr.const(8))
        assert t.kind == "op" and t.args[0] == "shr"
        assert t.args[2].value == 3

    def test_range_decided_comparison_folds(self):
        # the speculative fixture's bounds check: (k & 63) >= 64 == 0
        masked = expr.op("and", k(), expr.const(63))
        assert expr.op("ge", masked, expr.const(64)).value == 0
        assert expr.op("lt", masked, expr.const(64)).value == 1

    def test_ite_folds(self):
        x, y = k(), expr.var("k", side="B")
        assert expr.ite(expr.const(1), x, y) is x
        assert expr.ite(expr.const(0), x, y) is y
        cond = expr.op("lt", x, expr.const(5))
        assert expr.ite(cond, x, x) is x


class TestArrayReads:
    def test_read_through_concrete_writes(self):
        state = expr.array_init("t", None, 8)
        v = k()
        state = expr.array_write(state, expr.const(3), v)
        assert expr.read(state, expr.const(3)) is v
        elem = expr.read(state, expr.const(2))
        assert elem.kind == "var" and elem.args == ("t", 2, None)

    def test_read_concrete_init(self):
        state = expr.array_init("t", None, 4, concrete=(10, 20, 30, 40))
        assert expr.read(state, expr.const(2)).value == 30

    def test_symbolic_index_defers(self):
        state = expr.array_init("t", None, 4)
        r = expr.read(state, k())
        assert r.kind == "read"


class TestEvaluation:
    def test_matches_executor_semantics(self):
        # div/mod by zero -> 0, matching ir.OPS.
        x = expr.var("x")
        for opname in ("div", "mod"):
            t = expr.op(opname, expr.const(7), x)
            assert expr.evaluate(t, {("x", None, None): 0}) == 0

    def test_shift_clamps(self):
        x = expr.var("x")
        big = expr.op("shl", expr.const(1), x)
        assert expr.evaluate(big, {("x", None, None): 40}) == 0
        srl = expr.op("shr", expr.const(MASK32), x)
        assert expr.evaluate(srl, {("x", None, None): 100}) == 0

    @pytest.mark.parametrize("opname", sorted(ir.OPS))
    def test_ops_agree_with_ir_table(self, opname):
        a, b = 0xDEADBEEF, 13
        t = expr.op(opname, expr.var("a"), expr.var("b"))
        got = expr.evaluate(
            t, {("a", None, None): a, ("b", None, None): b}
        )
        assert got == (ir.OPS[opname][0](a, b) & MASK32)

    def test_read_walks_write_chain(self):
        state = expr.array_init("t", "A", 4)
        state = expr.array_write(state, expr.var("i"), expr.const(99))
        r = expr.read(state, expr.const(1))
        # write lands elsewhere -> initial secret element
        model = {("i", None, None): 0, ("t", 1, "A"): 7}
        assert expr.evaluate(r, model) == 7
        # write lands on index 1 -> shadowed
        assert expr.evaluate(r, {("i", None, None): 1}) == 99


class TestInfluence:
    def test_and_mask_narrows(self):
        t = expr.op("and", k(), expr.const(0b1010))
        infl = expr.influence([t])
        assert infl == {("k", None, "A"): 0b1010}

    def test_compare_widens(self):
        t = expr.op("ge", k(), expr.const(4))
        infl = expr.influence([t])
        assert infl[("k", None, "A")] == MASK32

    def test_masked_bits_provably_irrelevant(self):
        # flipping a bit outside the influence mask never changes the
        # value — the property exhaustive enumeration relies on.
        t = expr.op("and", k(), expr.const(0x3))
        key = ("k", None, "A")
        for base in (0, 1, 2, 3):
            v0 = expr.evaluate(t, {key: base})
            for bit in range(2, 32):
                assert expr.evaluate(t, {key: base | (1 << bit)}) == v0


class TestHelpers:
    def test_free_vars_deterministic(self):
        t = expr.op("add", expr.var("b"), expr.var("a"))
        assert expr.free_vars([t]) == [
            ("b", None, None),
            ("a", None, None),
        ]

    def test_mirror_key(self):
        assert expr.mirror_key(("k", None, "A")) == ("k", None, "B")
        assert expr.mirror_key(("k", 3, "B")) == ("k", 3, "A")
        assert expr.mirror_key(("n", None, None)) == ("n", None, None)

    def test_bool_and_not(self):
        x = k()
        b = expr.bool_term(x)
        assert (b.lo, b.hi) == (0, 1)
        n = expr.not_term(x)
        assert expr.evaluate(n, {("k", None, "A"): 0}) == 1
        assert expr.evaluate(n, {("k", None, "A"): 5}) == 0
