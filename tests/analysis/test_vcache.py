"""Verdict-cache correctness: content addressing and invalidation.

The cache key is the whole story: an unchanged (IR, checker config,
toolchain version) triple must be served bit-identical findings
without re-checking, and *any* change to that triple must force a
genuine re-check.  These tests drive each invalidation axis — IR
mutation, checker configuration (``--spec-window``), toolchain
version — plus the durable JSONL segment's crash tolerance.
"""

import dataclasses
import json

import pytest

import repro
from repro.analysis.engine import CheckSpec, run_check_specs
from repro.analysis.vcache import SEGMENT_NAME, VerdictCache
from repro.cli import main
from repro.lang import ir
from repro.lang.programs import lookup_program

pytestmark = pytest.mark.ctcheck


def _spec(**kw):
    defaults = dict(
        program=lookup_program(64)[0], symbolic=True, replay=False
    )
    defaults.update(kw)
    return CheckSpec(kind="program", name="lookup", **defaults)


def _findings_json(output):
    return json.dumps(
        [f.as_dict() for f in output.findings], sort_keys=True
    )


class TestContentAddressing:
    def test_same_spec_built_twice_hashes_equal(self):
        assert _spec().key() == _spec().key()

    def test_ir_mutation_changes_the_key(self):
        base = _spec()
        program = lookup_program(64)[0]
        mutated = dataclasses.replace(
            program,
            body=program.body + (ir.Const("pad", 0),),
        )
        assert base.key() != _spec(program=mutated).key()

    def test_checker_config_changes_the_key(self):
        assert _spec(spec_window=0).key() != _spec(spec_window=2).key()
        assert _spec(repair=False).key() != _spec(repair=True).key()
        assert _spec(symbolic=False).key() != _spec(symbolic=True).key()

    def test_version_bump_changes_the_key(self, monkeypatch):
        before = _spec().key()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert _spec().key() != before


class TestServingAndInvalidation:
    def test_identical_rerun_is_served_bit_identically(self):
        cache = VerdictCache()
        (cold,) = run_check_specs([_spec()], vcache=cache)
        assert cache.stats.stores == 1
        (warm,) = run_check_specs([_spec()], vcache=cache)
        assert cache.stats.stores == 1  # nothing re-checked
        assert cache.stats.hits == 1
        assert _findings_json(warm) == _findings_json(cold)

    def test_mutated_ir_is_rechecked(self):
        cache = VerdictCache()
        run_check_specs([_spec()], vcache=cache)
        program = lookup_program(64)[0]
        mutated = dataclasses.replace(
            program,
            body=program.body + (ir.Const("pad", 0),),
        )
        run_check_specs([_spec(program=mutated)], vcache=cache)
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0

    def test_spec_window_change_is_rechecked(self):
        cache = VerdictCache()
        run_check_specs([_spec(spec_window=0)], vcache=cache)
        run_check_specs([_spec(spec_window=2)], vcache=cache)
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0

    def test_version_bump_is_rechecked(self, monkeypatch):
        cache = VerdictCache()
        run_check_specs([_spec()], vcache=cache)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        run_check_specs([_spec()], vcache=cache)
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0


class TestDurableSegment:
    def test_verdicts_survive_a_new_cache_instance(self, tmp_path):
        first = VerdictCache(str(tmp_path))
        (cold,) = run_check_specs([_spec()], vcache=first)
        second = VerdictCache(str(tmp_path))
        (warm,) = run_check_specs([_spec()], vcache=second)
        assert second.stats.hits == 1
        assert second.stats.stores == 0
        assert _findings_json(warm) == _findings_json(cold)

    def test_torn_tail_and_garbage_lines_are_tolerated(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        run_check_specs([_spec()], vcache=cache)
        segment = tmp_path / SEGMENT_NAME
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"key": "k", "payload": "!!bad-base64"}\n')
            fh.write('{"key": "torn", "payload": "eyJ')  # no newline
        reopened = VerdictCache(str(tmp_path))
        assert len(reopened) == 1  # only the intact verdict
        (warm,) = run_check_specs([_spec()], vcache=reopened)
        assert reopened.stats.hits == 1

    def test_clear_removes_the_segment(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.put("k", {"v": 1})
        assert (tmp_path / SEGMENT_NAME).exists()
        cache.clear()
        assert not (tmp_path / SEGMENT_NAME).exists()
        assert len(VerdictCache(str(tmp_path))) == 0

    def test_memory_cache_needs_no_disk(self):
        cache = VerdictCache()
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert "k" in cache and len(cache) == 1


class TestCLI:
    def test_warm_pass_reports_zero_rechecked(self, capsys, tmp_path):
        argv = [
            "ctcheck", "--program", "lookup", "--no-workloads",
            "--json", "--vcache", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "1 target(s) checked" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "0 target(s) checked, 1 served from verdict cache" in warm.err
        assert warm.out == cold.out  # stdout JSON byte-identical
