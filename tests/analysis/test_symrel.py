"""Relational symbolic execution: solver, explorer, verdicts, replay."""

import pytest

from repro.analysis.api import BUILTIN_PROGRAM_SPECS
from repro.analysis.symrel import (
    Solver,
    check_program_relational,
    symrel_findings,
)
from repro.analysis.symrel import expr
from repro.analysis.symrel.explore import array_bases
from repro.core.machine import Machine, MachineConfig
from repro.lang.ir import ArrayDecl, BinOp, Const, For, Load, Program
from repro.lang.programs import (
    lookup_program,
    speculative_lookup_program,
)

pytestmark = pytest.mark.symrel

#: builtins whose native variant is sequentially constant-time.
SEQUENTIALLY_SAFE = {"speculative_lookup"}


class TestSolver:
    def test_structural_equality_is_instant(self):
        solver = Solver()
        t = expr.op("add", expr.var("x"), expr.const(1))
        outcome = solver.check_pair([], t, t)
        assert outcome.proved and outcome.method == "structural"

    def test_exhaustive_refutes_narrow_pair(self):
        solver = Solver()
        a = expr.op("and", expr.var("k", side="A"), expr.const(0x7))
        b = expr.op("and", expr.var("k", side="B"), expr.const(0x7))
        outcome = solver.check_pair([], a, b)
        assert outcome.refuted and outcome.method == "exhaustive"
        model = outcome.model
        assert expr.evaluate(a, model) != expr.evaluate(b, model)

    def test_exhaustive_proves_secret_free_pair(self):
        solver = Solver()
        shared = expr.op("and", expr.var("n"), expr.const(0x7))
        a = expr.op("add", shared, expr.const(1))
        b = expr.op("add", shared, expr.const(1))
        # interning makes these identical, so force distinct terms:
        b2 = expr.op("add", expr.const(1), shared)
        assert solver.check_pair([], a, b).proved
        assert solver.check_pair([], a, b2).proved

    def test_path_constraints_restrict_models(self):
        solver = Solver()
        ka = expr.var("k", side="A")
        kb = expr.var("k", side="B")
        a = expr.op("and", ka, expr.const(0x3))
        b = expr.op("and", kb, expr.const(0x3))
        # under the path "both low bits are zero" the pair is equal
        path = [
            expr.op("eq", a, expr.const(0)),
            expr.op("eq", b, expr.const(0)),
        ]
        assert solver.check_pair(path, a, b).proved

    def test_candidate_search_handles_wide_vars(self):
        solver = Solver()
        # full-width compare: 64 influential bits, beyond exhaustive
        a = expr.op("ge", expr.var("v", side="A"), expr.const(100))
        b = expr.op("ge", expr.var("v", side="B"), expr.const(100))
        outcome = solver.check_pair([], a, b)
        assert outcome.refuted and outcome.method == "candidate"

    def test_satisfiable(self):
        solver = Solver()
        masked = expr.op("and", expr.var("k", side="A"), expr.const(0x3))
        assert solver.satisfiable([expr.op("eq", masked, expr.const(3))])
        assert (
            solver.satisfiable([expr.op("eq", masked, expr.const(9))])
            is False
        )
        assert solver.satisfiable([expr.const(0)]) is False
        assert solver.satisfiable([expr.const(1)]) is True


class TestArrayBases:
    @pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAM_SPECS))
    def test_mirror_matches_real_allocator(self, name):
        program = BUILTIN_PROGRAM_SPECS[name]()
        machine = Machine(MachineConfig())
        expected = {
            decl.name: machine.allocator.alloc_words(
                decl.size, decl.name
            )
            for decl in program.arrays
        }
        assert array_bases(program) == expected


class TestVerdictMatrix:
    @pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAM_SPECS))
    def test_native_variant(self, name):
        program = BUILTIN_PROGRAM_SPECS[name]()
        result = check_program_relational(
            program, mitigate=False, replay=False
        )
        if name in SEQUENTIALLY_SAFE:
            assert result.verdict == "proved"
        else:
            assert result.verdict == "refuted"
            assert result.model is not None
            assert "vs" in result.model.describe()

    @pytest.mark.parametrize("name", sorted(BUILTIN_PROGRAM_SPECS))
    def test_mitigated_variant_proved(self, name):
        program = BUILTIN_PROGRAM_SPECS[name]()
        result = check_program_relational(
            program, mitigate=True, spec_window=1, replay=False
        )
        assert result.verdict == "proved"
        assert result.spec_verdict == "proved"

    def test_refutation_model_is_a_real_witness(self):
        program = lookup_program(64)[0]
        result = check_program_relational(
            program, mitigate=False, replay=False
        )
        refutation = result.exploration.refutation
        obs = refutation.observation
        model = refutation.outcome.model
        assert expr.evaluate(obs.a, model) != expr.evaluate(obs.b, model)


class TestSpeculativeMode:
    def test_spec_gap_fixture(self):
        program = speculative_lookup_program(64)[0]
        sequential = check_program_relational(
            program, mitigate=False, spec_window=0, replay=False
        )
        assert sequential.verdict == "proved"
        assert sequential.spec_verdict is None

        speculative = check_program_relational(
            program, mitigate=False, spec_window=1, replay=False
        )
        assert speculative.verdict == "proved"
        assert speculative.spec_verdict == "refuted"
        assert speculative.spec_model is not None
        assert "transient" in speculative.spec_observation

    def test_mitigation_closes_the_spec_leak(self):
        # Linearizing the secret branch removes the misprediction
        # surface entirely.
        program = speculative_lookup_program(64)[0]
        result = check_program_relational(
            program, mitigate=True, spec_window=4, replay=False
        )
        assert result.verdict == "proved"
        assert result.spec_verdict == "proved"


class TestReplay:
    def test_counterexample_confirmed_end_to_end(self):
        program = lookup_program(64)[0]
        result = check_program_relational(
            program, mitigate=False, replay=True
        )
        assert result.verdict == "refuted"
        assert result.replay is not None
        assert result.replay.confirmed
        assert result.replay.divergences

    def test_mitigation_closes_the_replayed_pair(self):
        # The very pair that leaks natively is indistinguishable on
        # the mitigated machine.
        from repro.analysis.symrel.replay import replay_counterexample

        program = lookup_program(64)[0]
        result = check_program_relational(
            program, mitigate=False, replay=False
        )
        replayed = replay_counterexample(
            program,
            result.model.side("A"),
            result.model.side("B"),
            mitigate=True,
        )
        assert replayed.error is None
        assert not replayed.confirmed


class TestLoopHandling:
    def test_symbolic_trip_count_uses_interval_facts(self):
        # count = n & 7 is symbolic but interval-bounded: the loop
        # guard-unrolls and the public-only body proves.
        program = Program(
            name="bounded_loop",
            inputs=("n",),
            arrays=(ArrayDecl("t", 8),),
            body=(
                BinOp("m", "and", "n", 7),
                For("i", "m", (Load("x", "t", "i"),)),
            ),
            outputs=("x",),
        )
        result = check_program_relational(
            program, mitigate=False, replay=False
        )
        assert result.verdict == "proved"

    def test_unbounded_trip_count_is_unknown_not_proved(self):
        program = Program(
            name="unbounded_loop",
            inputs=("n",),
            arrays=(ArrayDecl("t", 8),),
            body=(
                For("i", "n", (Const("x", 1),)),
            ),
            outputs=("x",),
        )
        result = check_program_relational(
            program, mitigate=False, replay=False
        )
        assert result.verdict == "unknown"
        assert result.notes


class TestFindings:
    def test_native_leak_renders_ct_rel(self):
        program = lookup_program(64)[0]
        findings = symrel_findings(program, replay=False)
        rules = {f.rule for f in findings}
        assert "CT-REL" in rules  # native refuted
        assert "CT-PROVED" in rules  # mitigated proved
        rel = next(f for f in findings if f.rule == "CT-REL")
        assert rel.severity == "error"
        assert "vs" in rel.message

    def test_spec_fixture_renders_ct_spec(self):
        program = speculative_lookup_program(64)[0]
        findings = symrel_findings(program, spec_window=2, replay=False)
        rules = {f.rule for f in findings}
        assert "CT-SPEC" in rules
        assert "CT-REL" not in rules
        spec = next(f for f in findings if f.rule == "CT-SPEC")
        assert spec.severity == "warning"

    def test_findings_are_deterministic(self):
        program = lookup_program(64)[0]
        first = [
            f.as_dict() for f in symrel_findings(program, replay=False)
        ]
        second = [
            f.as_dict() for f in symrel_findings(program, replay=False)
        ]
        assert first == second
