"""Automatic mitigation synthesis: localize, transform, re-prove.

Every leaky builtin must repair to CT-PROVED (sequential and
speculative) with provenance for every applied transform, lint clean
against the emitted DS declarations, stay within the 1.5x overhead
budget vs the executor's hand-mitigation, and — the ground truth —
run clean under the dynamic relational sanitizer *without* the
executor's on-the-fly mitigation.  A Hypothesis property pins the
other half of the contract: repair never changes what the program
computes.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.api import BUILTIN_PROGRAM_SPECS
from repro.analysis.ctlint import lint
from repro.analysis.facts import program_facts
from repro.analysis.repair import repair_program
from repro.analysis.repair.driver import exercise_inputs
from repro.analysis.repair.localize import (
    KIND_ACCESS,
    KIND_BRANCH,
    KIND_TRIPCOUNT,
    LeakSite,
    site_from_observation,
    tripcount_sites,
)
from repro.analysis.sanitizer import sanitize_program
from repro.analysis.symrel.explore import Observation
from repro.errors import TransformError
from repro.experiments.config import build_context
from repro.lang import ir
from repro.lang.executor import run_program
from repro.lang.pretty import statement_paths

pytestmark = pytest.mark.repair

BUILTINS = sorted(BUILTIN_PROGRAM_SPECS)
SPEC_WINDOW = 2
MAX_OVERHEAD_RATIO = 1.5
TRANSFORM_KINDS = {"linearize", "ds-route", "pad-tripcount"}
RULES = {"CT-REL", "CT-SPEC", "CT-TRIPCOUNT", "CT-UNKNOWN"}


@functools.lru_cache(maxsize=None)
def repaired(name):
    """Repair each builtin once per session — the loop is expensive."""
    return repair_program(
        BUILTIN_PROGRAM_SPECS[name](), spec_window=SPEC_WINDOW
    )


def _inputs_for_secret(program):
    """``inputs_for_secret`` callable with line-distant secret values.

    Secret scalars flip between 0 and 65535 (indices land on different
    cache lines after any mask/mod clamp); secret array contents flip
    between all-zero and a spread of values.  Public parts stay fixed
    across secrets so the relational check is not vacuous.
    """
    base_inputs, base_arrays = exercise_inputs(program, seed=3)
    secret_arrays = {d.name for d in program.arrays if d.secret}

    def for_secret(secret):
        inputs = dict(base_inputs)
        arrays = {k: list(v) for k, v in base_arrays.items()}
        for name in program.secret_inputs:
            inputs[name] = 0 if secret == 0 else 65535
        for name in secret_arrays:
            size = len(arrays[name])
            if secret == 0:
                arrays[name] = [0] * size
            else:
                arrays[name] = [(37 * (i + 1)) % (1 << 12) for i in range(size)]
        return inputs, arrays

    return for_secret


class TestEndToEnd:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_repairs_to_proved(self, name):
        res = repaired(name)
        assert res.proved, res.summary()
        assert res.rounds >= 1
        # Every builtin ships leaky: at least one transform applied.
        assert res.applied

    @pytest.mark.parametrize("name", BUILTINS)
    def test_residual_is_the_proof(self, name):
        res = repaired(name)
        assert res.residual is not None
        assert res.residual.verdict == "proved"
        if SPEC_WINDOW > 0:
            assert res.residual.spec_verdict == "proved"

    @pytest.mark.parametrize("name", BUILTINS)
    def test_transform_provenance(self, name):
        res = repaired(name)
        final_paths = dict(statement_paths(res.repaired))
        for t in res.applied:
            assert t.kind in TRANSFORM_KINDS
            assert t.rule in RULES
            assert t.final_path in final_paths
            assert t.description

    @pytest.mark.parametrize("name", BUILTINS)
    def test_overhead_within_budget(self, name):
        res = repaired(name)
        assert res.overhead is not None
        assert res.overhead.vs_manual <= MAX_OVERHEAD_RATIO, (
            res.overhead.as_dict()
        )
        assert res.overhead.repaired_cycles > 0
        assert res.overhead.manual_cycles > 0

    @pytest.mark.parametrize("name", BUILTINS)
    def test_repaired_lints_clean_with_emitted_ds(self, name):
        res = repaired(name)
        errors = [
            f
            for f in lint(res.repaired, ds_map=res.ds_declarations)
            if f.severity == "error"
        ]
        assert not errors, [f"{f.rule}: {f.message}" for f in errors]

    @pytest.mark.parametrize("name", BUILTINS)
    def test_repaired_is_sanitizer_clean_unmitigated(self, name):
        # The ground truth: the repaired program, run natively (no
        # executor mitigation), shows identical attacker-observable
        # traces across line-distant secrets on the ct scheme.
        res = repaired(name)
        report = sanitize_program(
            res.repaired,
            _inputs_for_secret(res.repaired),
            scheme="ct",
            mitigate=False,
            secrets=(0, 1),
        )
        assert report.clean, report.describe()

    def test_native_lookup_is_sanitizer_dirty(self):
        # Sanity that the clean-after check above is not vacuous: the
        # same harness flags the unrepaired program.
        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        report = sanitize_program(
            program,
            _inputs_for_secret(program),
            scheme="ct",
            mitigate=False,
            secrets=(0, 1),
        )
        assert not report.clean


class TestEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(BUILTINS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_repaired_preserves_public_outputs(self, name, seed):
        # Repair must be semantics-preserving: the repaired program run
        # natively computes exactly what the original computes under
        # the executor's on-the-fly mitigation (which is itself
        # equivalence-checked against the pure-python references).
        res = repaired(name)
        inputs, arrays = exercise_inputs(res.original, seed=seed)
        want = run_program(
            res.original,
            build_context("ct"),
            dict(inputs),
            {k: list(v) for k, v in arrays.items()},
            mitigate=True,
        )
        got = run_program(
            res.repaired,
            build_context("ct"),
            dict(inputs),
            {k: list(v) for k, v in arrays.items()},
            mitigate=False,
        )
        assert got == want


class TestLocalizer:
    def _secret_count_program(self, bounded):
        body = [ir.BinOp("n", "mod", "s", 8)] if bounded else []
        count = "n" if bounded else "s"
        return ir.Program(
            name="secret_count",
            secret_inputs=("s",),
            arrays=(ir.ArrayDecl("data", 8),),
            body=tuple(body)
            + (
                ir.Const("acc", 0),
                ir.For(
                    "i",
                    count,
                    (
                        ir.Load("v", "data", "i"),
                        ir.BinOp("acc", "add", "acc", "v"),
                    ),
                ),
            ),
            outputs=("acc",),
        )

    def test_tripcount_site_with_interval_bound(self):
        program = self._secret_count_program(bounded=True)
        sites = tripcount_sites(program_facts(program))
        assert len(sites) == 1
        site = sites[0]
        assert site.kind == KIND_TRIPCOUNT
        assert site.rule == "CT-TRIPCOUNT"
        assert site.path == "body[2]"
        assert site.bound == 7  # s mod 8 is in [0, 7]
        assert site.slice  # provenance reaches the mod

    def test_tripcount_site_unbounded_has_no_bound(self):
        program = self._secret_count_program(bounded=False)
        sites = tripcount_sites(program_facts(program))
        assert len(sites) == 1
        assert sites[0].bound is None
        assert "unbounded" in sites[0].detail

    def test_branch_observation_localizes_with_slice(self):
        program = BUILTIN_PROGRAM_SPECS["binary_search"]()
        path = "body[2].body[5]"  # the If on 'go'
        obs = Observation(kind="branch", a=None, b=None, stmt_path=path)
        site = site_from_observation(program, obs, "CT-REL")
        assert site is not None
        assert site.kind == KIND_BRANCH
        assert site.path == path
        assert site.slice  # cond's backward slice is non-trivial

    def test_addr_observation_localizes_access(self):
        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        obs = Observation(kind="addr", a=None, b=None, stmt_path="body[1]")
        site = site_from_observation(program, obs, "CT-SPEC")
        assert site is not None
        assert site.kind == KIND_ACCESS
        assert site.rule == "CT-SPEC"

    def test_observation_without_path_is_not_localizable(self):
        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        obs = Observation(kind="branch", a=None, b=None, stmt_path="")
        assert site_from_observation(program, obs, "CT-REL") is None

    def test_observation_kind_statement_mismatch(self):
        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        # branch observation pointing at a Load: no transform applies
        obs = Observation(kind="branch", a=None, b=None, stmt_path="body[1]")
        assert site_from_observation(program, obs, "CT-REL") is None
        # stale path from a previous round's coordinates
        obs = Observation(kind="addr", a=None, b=None, stmt_path="body[9]")
        assert site_from_observation(program, obs, "CT-REL") is None


class TestDriverEdges:
    def test_bounded_secret_tripcount_repairs(self):
        program = TestLocalizer()._secret_count_program(bounded=True)
        res = repair_program(program, spec_window=0, measure=False)
        assert res.proved, res.summary()
        assert any(t.kind == "pad-tripcount" for t in res.applied)

    def test_unbounded_secret_tripcount_is_irreparable(self):
        program = TestLocalizer()._secret_count_program(bounded=False)
        res = repair_program(program, spec_window=0, measure=False)
        assert res.verdict == "irreparable"
        assert "bound" in res.reason

    def test_already_clean_program_needs_no_transform(self):
        program = ir.Program(
            name="clean",
            inputs=("x",),
            secret_inputs=("s",),
            body=(
                ir.BinOp("r", "xor", "x", "s"),
                ir.BinOp("r", "and", "r", 255),
            ),
            outputs=("r",),
        )
        res = repair_program(program, spec_window=SPEC_WINDOW, measure=False)
        assert res.proved
        assert res.applied == []
        assert res.repaired is program
        assert res.overhead is None

    def test_max_rounds_zero_reports_unknown(self):
        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        res = repair_program(program, max_rounds=0, measure=False)
        assert res.verdict == "unknown"
        assert "round" in res.reason

    def test_ds_declarations_match_routed_arrays(self):
        res = repaired("des")
        routed = {
            stmt.array
            for _, stmt in statement_paths(res.repaired)
            if isinstance(stmt, (ir.Load, ir.Store)) and stmt.ds
        }
        assert set(res.ds_declarations) == routed
        for name, (ds, base) in res.ds_declarations.items():
            assert len(ds) > 0
            assert base >= 0

    def test_apply_rejects_unknown_kind(self):
        from repro.analysis.repair.driver import _apply

        program = BUILTIN_PROGRAM_SPECS["lookup"]()
        facts = program_facts(program)
        site = LeakSite(
            path="body[1]", kind="nonsense", rule="CT-REL", detail=""
        )
        with pytest.raises(TransformError):
            _apply(program, site, facts)
