"""The verification engine: parallel fan-out, determinism, memoization.

The engine's contract is that a :class:`CheckSpec` fully determines
its output: serial, parallel, and cache-served runs must produce
byte-identical merged JSON.  That hinges on three mechanisms tested
here — per-program intern scopes (pointer-unique terms without
cross-program table growth), the solver's pointer-keyed verdict memos
(incremental re-proving across variants and repair rounds), and the
occupied-set digest fast path (same digest as the dense scan it
replaced).
"""

import json

import pytest

from repro.analysis.api import run_ctcheck
from repro.analysis.engine import CheckSpec, check_target, run_check_specs
from repro.analysis.symrel import expr
from repro.analysis.symrel.solve import Solver
from repro.analysis.vcache import VerdictCache
from repro.lang.programs import lookup_program, swap_program

pytestmark = pytest.mark.ctcheck


def _spec(name="lookup", **kw):
    builders = {"lookup": lookup_program, "swap": swap_program}
    defaults = dict(symbolic=True, replay=False)
    defaults.update(kw)
    return CheckSpec(
        kind="program",
        name=name,
        program=builders[name](64)[0],
        **defaults,
    )


def _result_json(result):
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


class TestInternScope:
    def test_terms_are_pointer_unique_within_a_scope(self):
        with expr.intern_scope():
            a = expr.op("add", expr.var("k"), expr.const(3))
            b = expr.op("add", expr.var("k"), expr.const(3))
            assert a is b

    def test_scope_restores_outer_table_and_bumps_epoch(self):
        outer = expr.const(7)
        before_size = expr.intern_table_size()
        before_epoch = expr.intern_epoch()
        with expr.intern_scope():
            assert expr.intern_epoch() == before_epoch + 1
            # The scope starts empty: the same constant is re-interned
            # as a fresh object in the inner table.
            inner = expr.const(7)
            assert inner is not outer
            expr.var("scratch")
        assert expr.intern_table_size() == before_size
        assert expr.intern_epoch() == before_epoch + 2
        # The outer table is intact: interning yields the old object.
        assert expr.const(7) is outer

    def test_check_target_leaves_global_tables_flat(self):
        before = expr.intern_table_size()
        check_target(_spec())
        assert expr.intern_table_size() == before

    def test_clear_intern_tables_empties_and_bumps(self):
        with expr.intern_scope():
            expr.var("x")
            epoch = expr.intern_epoch()
            expr.clear_intern_tables()
            assert expr.intern_table_size() == 0
            assert expr.intern_epoch() == epoch + 1


class TestSolverMemo:
    def test_repeated_query_is_a_memo_hit(self):
        with expr.intern_scope():
            solver = Solver()
            k = expr.var("k", side="l")
            a = expr.op("and", k, expr.const(0x3))
            b = expr.op("and", expr.var("k", side="r"), expr.const(0x3))
            first = solver.check_pair([], a, b)
            hits = solver.stats.memo_hits
            second = solver.check_pair([], a, b)
            assert solver.stats.memo_hits == hits + 1
            assert second is first

    def test_satisfiable_memoizes_none_verdicts_too(self):
        with expr.intern_scope():
            solver = Solver()
            path = [expr.op("eq", expr.var("k"), expr.const(1))]
            first = solver.satisfiable(path)
            hits = solver.stats.memo_hits
            assert solver.satisfiable(path) == first
            assert solver.stats.memo_hits == hits + 1

    def test_epoch_change_invalidates_memos(self):
        # Pointer-keyed memos are only sound within one intern epoch:
        # after the tables are swapped, term ids can be reused by
        # unrelated terms, so the solver must drop its memos.
        solver = Solver()
        with expr.intern_scope():
            a = expr.op("add", expr.var("k"), expr.const(1))
            solver.check_pair([], a, a)
            solver.satisfiable([expr.var("k")])
            assert solver._pair_memo or solver._sat_memo
        with expr.intern_scope():
            solver.satisfiable([expr.var("j")])
            assert len(solver._sat_memo) == 1
            assert not solver._pair_memo

    def test_engine_reuses_verdicts_across_repair_rounds(self):
        # One solver is shared across the symbolic check and every
        # repair round: each round's re-proof re-issues queries a
        # previous round already decided, which must come back from
        # the memo instead of re-running a decision tier.
        output = check_target(_spec(repair=True))
        assert output.solver_stats["memo_hits"] > 0


class TestEngineExecution:
    def test_outputs_come_back_in_submission_order(self):
        specs = [_spec("swap"), _spec("lookup")]
        outputs = run_check_specs(specs)
        assert [o.name for o in outputs] == ["swap", "lookup"]

    def test_duplicate_specs_are_checked_once(self):
        cache = VerdictCache()
        specs = [_spec(), _spec()]
        outputs = run_check_specs(specs, vcache=cache)
        assert cache.stats.stores == 1
        assert outputs[0] is outputs[1]

    def test_parallel_run_is_byte_identical_to_serial(self):
        kw = dict(
            programs=["lookup", "swap", "conditional_sum"],
            include_workloads=False,
            symbolic=True,
            replay=False,
            repair=True,
        )
        serial = run_ctcheck(**kw)
        parallel = run_ctcheck(jobs=2, **kw)
        assert _result_json(serial) == _result_json(parallel)

    def test_cached_run_is_byte_identical_to_fresh(self):
        cache = VerdictCache()
        kw = dict(
            programs=["lookup"],
            include_workloads=False,
            symbolic=True,
            replay=False,
        )
        cold = run_ctcheck(vcache=cache, **kw)
        assert cache.stats.stores == 1
        warm = run_ctcheck(vcache=cache, **kw)
        assert cache.stats.hits >= 1
        assert _result_json(cold) == _result_json(warm)

    def test_unknown_spec_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown CheckSpec kind"):
            check_target(CheckSpec(kind="nonsense", name="x"))


class TestSolverStatsAggregation:
    def test_stats_are_summed_across_programs(self):
        one = run_ctcheck(
            programs=["lookup"],
            include_workloads=False,
            symbolic=True,
            replay=False,
        )
        two = run_ctcheck(
            programs=["lookup", "swap"],
            include_workloads=False,
            symbolic=True,
            replay=False,
        )
        assert one.solver_stats["queries"] > 0
        assert two.solver_stats["queries"] > one.solver_stats["queries"]
        assert (
            two.as_dict()["solver_stats"] == two.solver_stats
        )

    def test_plain_lint_json_has_no_solver_stats_key(self):
        result = run_ctcheck(
            programs=["lookup"], include_workloads=False
        )
        assert "solver_stats" not in result.as_dict()


class TestDigestFastPath:
    def test_occupied_sets_matches_dense_scan(self, monkeypatch):
        from repro.attacks.observer import ObservableTraceRecorder
        from repro.cache.set_assoc import SetAssociativeCache
        from repro.core.machine import Machine, MachineConfig

        machine = Machine(MachineConfig())
        base = machine.allocator.alloc(8 * 1024, "a")
        rec = ObservableTraceRecorder()
        for name in ("L1D", "L2", "LLC"):
            rec.attach(machine.hierarchy.level(name))
        for i in range(96):
            machine.load_word(base + 64 * i)
            machine.store_word(base + 64 * i, i)
        fast = rec.final_state_digest()
        monkeypatch.delattr(SetAssociativeCache, "occupied_sets")
        dense = rec.final_state_digest()
        assert fast == dense
        assert fast  # a non-trivial digest, not vacuous equality
