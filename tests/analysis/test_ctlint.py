"""ctlint: every rule ID firing — and *not* firing — plus plumbing."""

import pytest

from repro import params
from repro.analysis.ctlint import RULES, Finding, lint, max_severity
from repro.ct.ds import DataflowLinearizationSet
from repro.lang.ir import (
    ArrayDecl,
    BinOp,
    Const,
    For,
    If,
    Load,
    Program,
    Select,
    Store,
)
from repro.lang.programs import histogram_program, lookup_program


def prog(body, secret_inputs=(), inputs=(), arrays=(), outputs=(),
         output_arrays=()):
    return Program(
        name="t",
        inputs=tuple(inputs),
        secret_inputs=tuple(secret_inputs),
        arrays=tuple(arrays),
        body=tuple(body),
        outputs=tuple(outputs),
        output_arrays=tuple(output_arrays),
    )


def rules_of(findings):
    return {f.rule for f in findings}


class TestRuleTable:
    def test_severities_are_known(self):
        for rule, (severity, _) in RULES.items():
            assert severity in ("error", "warning", "info"), rule

    def test_findings_use_registered_rules(self):
        program, _ = histogram_program(16, 8)
        for finding in lint(program):
            assert finding.rule in RULES
            assert finding.severity == RULES[finding.rule][0]

    def test_max_severity(self):
        assert max_severity([]) is None
        findings = [
            Finding("CT-DFL", "info", "p", "", ""),
            Finding("DS-COVERAGE", "error", "p", "", ""),
            Finding("CT-VARLAT", "warning", "p", "", ""),
        ]
        assert max_severity(findings) == "error"


class TestVarlat:
    def test_fires_on_secret_div(self):
        findings = lint(
            prog([BinOp("x", "div", "k", 3)], secret_inputs=("k",))
        )
        assert "CT-VARLAT" in rules_of(findings)

    def test_fires_on_secret_mod(self):
        findings = lint(
            prog([BinOp("x", "mod", "k", 3)], secret_inputs=("k",))
        )
        assert "CT-VARLAT" in rules_of(findings)

    def test_silent_on_public_div(self):
        findings = lint(
            prog([Const("a", 9), BinOp("x", "div", "a", 3)],
                 secret_inputs=("k",))
        )
        assert "CT-VARLAT" not in rules_of(findings)

    def test_silent_on_secret_fixed_latency_op(self):
        findings = lint(
            prog([BinOp("x", "xor", "k", 3)], secret_inputs=("k",))
        )
        assert "CT-VARLAT" not in rules_of(findings)


class TestTripcount:
    def test_fires_on_secret_trip_count(self):
        findings = lint(prog([For("i", "k", ())], secret_inputs=("k",)))
        hits = [f for f in findings if f.rule == "CT-TRIPCOUNT"]
        assert hits and hits[0].severity == "error"

    def test_fires_on_loop_under_secret_branch(self):
        findings = lint(
            prog(
                [If("k", then_body=(For("i", 4, ()),))],
                secret_inputs=("k",),
            )
        )
        assert "CT-TRIPCOUNT" in rules_of(findings)

    def test_silent_on_public_loop(self):
        findings = lint(prog([For("i", 4, ())], secret_inputs=("k",)))
        assert "CT-TRIPCOUNT" not in rules_of(findings)


class TestDSCoverageRule:
    def test_fires_on_unbounded_secret_index(self):
        findings = lint(
            prog(
                [Load("v", "a", "k")],
                secret_inputs=("k",),
                arrays=(ArrayDecl("a", 16),),
            )
        )
        hits = [f for f in findings if f.rule == "DS-COVERAGE"]
        assert hits and hits[0].severity == "error"
        assert hits[0].path == "body[0]"

    def test_silent_when_mod_bounds_the_index(self):
        program, _ = lookup_program(64)
        assert "DS-COVERAGE" not in rules_of(lint(program))

    def test_fires_against_underregistered_custom_ds(self):
        program, _ = lookup_program(64)
        base = 0x40000
        half = DataflowLinearizationSet.from_range(
            base, 32 * params.WORD_SIZE, name="half"
        )
        findings = lint(program, ds_map={"table": (half, base)})
        assert "DS-COVERAGE" in rules_of(findings)

    def test_silent_against_full_custom_ds(self):
        program, _ = lookup_program(64)
        base = 0x40000
        full = DataflowLinearizationSet.from_range(
            base, 64 * params.WORD_SIZE, name="full"
        )
        findings = lint(program, ds_map={"table": (full, base)})
        assert "DS-COVERAGE" not in rules_of(findings)


class TestOOB:
    def test_fires_on_public_overflow(self):
        # i + 14 can reach 17 in a 16-word array, with a public index.
        findings = lint(
            prog(
                [For("i", 4, (BinOp("j", "add", "i", 14),
                              Load("v", "a", "j")))],
                arrays=(ArrayDecl("a", 16),),
            )
        )
        hits = [f for f in findings if f.rule == "CT-OOB"]
        assert hits and hits[0].severity == "warning"

    def test_silent_when_bounded(self):
        findings = lint(
            prog(
                [For("i", 16, (Load("v", "a", "i"),))],
                arrays=(ArrayDecl("a", 16),),
            )
        )
        assert "CT-OOB" not in rules_of(findings)


class TestDeclass:
    def test_fires_on_tainted_store_to_output_array(self):
        findings = lint(
            prog(
                [Store("out", 0, "k")],
                secret_inputs=("k",),
                arrays=(ArrayDecl("out", 4),),
                output_arrays=("out",),
            )
        )
        assert "CT-DECLASS" in rules_of(findings)

    def test_silent_on_non_output_array(self):
        findings = lint(
            prog(
                [Store("tmp", 0, "k")],
                secret_inputs=("k",),
                arrays=(ArrayDecl("tmp", 4),),
            )
        )
        assert "CT-DECLASS" not in rules_of(findings)

    def test_silent_on_public_store_to_output(self):
        findings = lint(
            prog(
                [Const("x", 7), Store("out", 0, "x")],
                secret_inputs=("k",),
                arrays=(ArrayDecl("out", 4),),
                output_arrays=("out",),
            )
        )
        assert "CT-DECLASS" not in rules_of(findings)


class TestDeadMitigation:
    def test_fires_on_never_secret_accessed_array(self):
        findings = lint(
            prog(
                [Load("v", "a", 0)],
                secret_inputs=("k",),
                arrays=(ArrayDecl("a", 4),),
            )
        )
        assert "CT-DEADMIT" in rules_of(findings)

    def test_silent_on_secret_indexed_array(self):
        program, _ = lookup_program(64)
        assert "CT-DEADMIT" not in rules_of(lint(program))

    def test_predicated_access_counts_as_used(self):
        # An access under a secret branch is mitigated even with a
        # public index: the registration is NOT dead.
        findings = lint(
            prog(
                [If("k", then_body=(Store("a", 0, 1),))],
                secret_inputs=("k",),
                arrays=(ArrayDecl("a", 4),),
            )
        )
        assert "CT-DEADMIT" not in rules_of(findings)


class TestInfoRules:
    def test_linearize_fires_on_secret_branch(self):
        findings = lint(
            prog([If("k", then_body=(Const("x", 1),))],
                 secret_inputs=("k",))
        )
        assert "CT-LINEARIZE" in rules_of(findings)

    def test_linearize_silent_on_public_branch(self):
        findings = lint(
            prog(
                [Const("p", 1), If("p", then_body=(Const("x", 1),))],
                secret_inputs=("k",),
            )
        )
        assert "CT-LINEARIZE" not in rules_of(findings)

    def test_dfl_fires_on_secret_indexed_access(self):
        program, _ = lookup_program(64)
        assert "CT-DFL" in rules_of(lint(program))

    def test_select_fires_only_on_secret_condition(self):
        secret_cond = lint(
            prog(
                [Const("a", 1), Const("b", 2), Select("s", "k", "a", "b")],
                secret_inputs=("k",),
            )
        )
        assert "CT-SELECT" in rules_of(secret_cond)
        data_taint = lint(
            prog(
                [Const("p", 1), Select("s", "p", "k", 0)],
                secret_inputs=("k",),
            )
        )
        assert "CT-SELECT" not in rules_of(data_taint)

    def test_summary_always_present(self):
        findings = lint(prog([]))
        assert "CT-SUMMARY" in rules_of(findings)


class TestSymrelRules:
    def test_relational_rules_registered(self):
        for rule in ("CT-REL", "CT-SPEC", "CT-PROVED", "CT-UNKNOWN"):
            assert rule in RULES
        assert RULES["CT-REL"][0] == "error"
        assert RULES["CT-SPEC"][0] == "warning"
        assert RULES["CT-PROVED"][0] == "info"
        assert RULES["CT-UNKNOWN"][0] == "warning"


class TestOrderingAndFormat:
    def test_errors_sort_first(self):
        findings = lint(
            prog(
                [Load("v", "a", "k")],
                secret_inputs=("k",),
                arrays=(ArrayDecl("a", 16),),
            )
        )
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities,
            key=["error", "warning", "info"].index,
        )

    def test_format_contains_location_and_rule(self):
        program, _ = histogram_program(16, 8)
        findings = lint(program)
        located = [f for f in findings if f.path]
        assert located
        text = located[0].format()
        assert located[0].rule in text
        assert f"histogram:{located[0].path}" in text

    def test_as_dict_round_trip_fields(self):
        finding = lint(prog([For("i", "k", ())], secret_inputs=("k",)))[0]
        d = finding.as_dict()
        assert d["rule"] == finding.rule
        assert set(d) == {
            "rule", "severity", "program", "path", "message", "snippet"
        }

    def test_identical_findings_collapse(self):
        # value-equal findings hash equal, so the linter's
        # dict.fromkeys dedupe keeps exactly one copy
        a = Finding("CT-DFL", "info", "p", "body[0]", "m", "s")
        b = Finding("CT-DFL", "info", "p", "body[0]", "m", "s")
        assert a == b and hash(a) == hash(b)
        assert list(dict.fromkeys([a, b, a])) == [a]

    def test_output_has_no_duplicates_and_is_byte_stable(self):
        import json

        program, _ = histogram_program(16, 8)
        first = lint(program)
        second = lint(program)
        assert len(first) == len(set(first))
        assert [f.as_dict() for f in first] == [
            f.as_dict() for f in second
        ]
        assert json.dumps(
            [f.as_dict() for f in first], sort_keys=True
        ) == json.dumps([f.as_dict() for f in second], sort_keys=True)

    def test_sort_key_is_severity_rule_location(self):
        program, _ = histogram_program(16, 8)
        findings = lint(program)
        keys = [
            (["error", "warning", "info"].index(f.severity),
             f.rule, f.path)
            for f in findings
        ]
        assert keys == sorted(keys)
