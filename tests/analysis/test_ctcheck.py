"""The ctcheck gate: every shipped target is clean, leaks exit 1."""

import json

import pytest

from repro.analysis import api
from repro.analysis.api import (
    CTCheckResult,
    audit_workload_ds,
    builtin_programs,
    check_program,
    run_ctcheck,
)
from repro.cli import main
from repro.lang.ir import ArrayDecl, Load, Program
from repro.workloads import WORKLOADS

pytestmark = pytest.mark.ctcheck


def bad_program():
    """A secret-indexed load with no bounding: DS-COVERAGE error."""
    return Program(
        name="bad",
        secret_inputs=("key",),
        arrays=(ArrayDecl("table", 64),),
        body=(Load("out", "table", "key"),),
        outputs=("out",),
    )


class TestShippedTargetsAreClean:
    @pytest.mark.parametrize("name", sorted(api.BUILTIN_PROGRAM_SPECS))
    def test_builtin_program_has_no_errors(self, name):
        program = builtin_programs()[name]
        errors = [
            f for f in check_program(program) if f.severity == "error"
        ]
        assert not errors, [f.format() for f in errors]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workload_ds_audit_has_no_errors(self, name):
        errors = [
            f
            for f in audit_workload_ds(name)
            if f.severity == "error"
        ]
        assert not errors, [f.format() for f in errors]

    def test_run_ctcheck_all_exits_zero(self):
        result = run_ctcheck()
        assert result.exit_code == 0
        assert len(result.checked) == len(api.BUILTIN_PROGRAM_SPECS) + len(
            WORKLOADS
        )


class TestResultAggregation:
    def test_exit_code_tracks_errors(self):
        result = CTCheckResult()
        assert result.exit_code == 0
        result.findings.extend(check_program(bad_program()))
        assert result.errors
        assert result.exit_code == 1

    def test_summary_and_counts(self):
        result = run_ctcheck(
            programs=["lookup"], include_workloads=False
        )
        counts = result.counts()
        assert set(counts) == {"error", "warning", "info"}
        assert "checked 1 target(s)" in result.summary()

    def test_as_dict_is_json_serializable(self):
        result = run_ctcheck(
            programs=["lookup"], include_workloads=False
        )
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["exit_code"] == 0
        assert payload["checked"] == ["program:lookup"]


class TestCLI:
    def test_all_flag_exits_zero(self, capsys):
        assert main(["ctcheck", "--all"]) == 0
        out = capsys.readouterr().out
        assert "worst severity" in out

    def test_bad_program_exits_one_with_ds_coverage(
        self, capsys, monkeypatch
    ):
        monkeypatch.setitem(
            api.BUILTIN_PROGRAM_SPECS, "bad", bad_program
        )
        code = main(
            ["ctcheck", "--program", "bad", "--no-workloads"]
        )
        assert code == 1
        assert "DS-COVERAGE" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked"] == ["program:lookup"]
        assert payload["exit_code"] == 0

    def test_min_severity_filters_output(self, capsys):
        main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--min-severity", "error"]
        )
        out = capsys.readouterr().out
        assert "hidden" in out
        assert "CT-DFL" not in out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["ctcheck", "--program", "nope"])

    def test_list_rules_prints_full_catalog(self, capsys):
        from repro.analysis.ctlint import RULES

        assert main(["ctcheck", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule, (severity, _) in RULES.items():
            assert rule in out
            assert severity in out
        # The relational rules ship in the catalog.
        for rule in ("CT-REL", "CT-SPEC", "CT-PROVED", "CT-UNKNOWN"):
            assert rule in out

    def test_symbolic_flag_refutes_native_proves_mitigated(self, capsys):
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--symbolic", "--no-replay"]
        )
        # The native variant of every builtin leaks by design, so the
        # symbolic mode exits 1 — with a CT-REL carrying a concrete
        # pair and a CT-PROVED for the mitigated variant.
        assert code == 1
        out = capsys.readouterr().out
        assert "CT-REL" in out
        assert "CT-PROVED" in out
        assert "mitigated execution proved constant-time" in out

    def test_single_workload_audit(self, capsys):
        # --workload narrows the audit but the static program checks
        # still run: every builtin program + 1 workload.
        targets = len(api.BUILTIN_PROGRAM_SPECS) + 1
        assert main(["ctcheck", "--workload", "binary_search"]) == 0
        assert (
            f"checked {targets} target(s)" in capsys.readouterr().out
        )


class TestRepairMode:
    def test_repair_flag_fixes_and_exits_zero(self, capsys):
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--repair"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CT-REPAIR" in out
        assert "repaired program proved constant-time" in out

    def test_repair_json_carries_repair_results(self, capsys):
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--repair", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["repairs"]["lookup"]
        assert entry["verdict"] == "proved"
        assert entry["rounds"] >= 1
        assert entry["transforms"]
        assert entry["overhead"]["vs_manual"] <= 1.5
        # One CT-REPAIR finding per applied transform.
        repairs = [
            f for f in payload["findings"] if f["rule"] == "CT-REPAIR"
        ]
        assert len(repairs) == len(entry["transforms"])

    def test_json_without_repair_has_no_repairs_key(self, capsys):
        # Byte-stability: adding the feature must not change the JSON
        # shape of non-repair runs.
        main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert "repairs" not in payload

    def test_repair_out_dumps_repaired_ir(self, capsys, tmp_path):
        out_file = tmp_path / "repaired.txt"
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--repair", "--repair-out", str(out_file)]
        )
        assert code == 0
        text = out_file.read_text()
        assert "lookup" in text
        assert "# " in text  # the summary header line
        assert "[ds]" in text  # the routed access in the dumped IR

    def test_max_rounds_is_threaded_through(self, capsys):
        # A 0-round budget cannot repair anything: the terminal
        # finding degrades to the inconclusive warning.
        code = main(
            ["ctcheck", "--program", "lookup", "--no-workloads",
             "--repair", "--max-rounds", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0  # warnings do not fail the gate
        assert "automatic repair inconclusive" in out

    def test_ct_repair_rule_ships_in_catalog(self):
        from repro.analysis.ctlint import RULES

        severity, _ = RULES["CT-REPAIR"]
        assert severity == "info"

    def test_run_ctcheck_computes_facts_once_per_program(
        self, monkeypatch
    ):
        calls = []
        real = api.program_facts

        def counting(program):
            calls.append(program.name)
            return real(program)

        monkeypatch.setattr(api, "program_facts", counting)
        run_ctcheck(
            programs=["lookup"],
            include_workloads=False,
            symbolic=True,
            replay=False,
        )
        assert calls == ["lookup"]
