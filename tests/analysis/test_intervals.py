"""Interval domain, widening termination, and DS coverage proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.analysis.intervals import (
    MASK32,
    Interval,
    _binop_interval,
    analyze_intervals,
    prove_ds_covers,
)
from repro.lang import ir
from repro.ct.ds import DataflowLinearizationSet
from repro.lang.ir import (
    ArrayDecl,
    BinOp,
    Const,
    For,
    If,
    Load,
    Program,
    Select,
    Store,
)
from repro.lang.programs import (
    histogram_program,
    lookup_program,
    swap_program,
)


def prog(body, secret_inputs=(), inputs=(), arrays=()):
    return Program(
        name="t",
        inputs=tuple(inputs),
        secret_inputs=tuple(secret_inputs),
        arrays=tuple(arrays),
        body=tuple(body),
    )


class TestDomain:
    def test_const_and_join(self):
        a, b = Interval.const(3), Interval.const(10)
        assert a.join(b) == Interval(3, 10)

    def test_widen_unstable_bounds(self):
        old, new = Interval(0, 10), Interval(0, 11)
        widened = old.widen(new)
        assert widened.lo == 0 and widened.hi == float("inf")

    def test_widen_stable_is_identity(self):
        old = Interval(0, 10)
        assert old.widen(Interval(2, 9)) == old

    def test_mask_in_range_is_exact(self):
        assert Interval(0, 100).masked() == Interval(0, 100)

    def test_mask_wrapping_collapses_to_word(self):
        assert Interval(-5, 10).masked() == Interval(0, MASK32)

    def test_contains_and_within(self):
        iv = Interval(2, 6)
        assert iv.contains(4) and not iv.contains(7)
        assert iv.within(0, 6) and not iv.within(3, 10)


class TestTransfer:
    def _bound_of(self, body, reg, **kwargs):
        program = prog(body, **kwargs)
        report = analyze_intervals(program)
        return report.final_env[reg]

    def test_mod_positive_constant(self):
        iv = self._bound_of(
            [BinOp("t", "mod", "k", 64)], "t", secret_inputs=("k",)
        )
        assert iv == Interval(0, 63)

    def test_add_of_constants(self):
        iv = self._bound_of([Const("a", 3), BinOp("b", "add", "a", 4)], "b")
        assert iv == Interval(7, 7)

    def test_unknown_input_is_unbounded(self):
        program = prog([BinOp("x", "add", "k", 0)], secret_inputs=("k",))
        report = analyze_intervals(program)
        # The raw input is unbounded; the register *write* is masked
        # to 32 bits by the executor, so x collapses to a full word.
        assert not report.final_env["k"].is_bounded
        assert report.final_env["x"] == Interval(0, MASK32)

    def test_comparison_is_boolean(self):
        iv = self._bound_of(
            [BinOp("c", "lt", "k", 5)], "c", secret_inputs=("k",)
        )
        assert iv == Interval(0, 1)

    def test_and_with_mask_constant(self):
        iv = self._bound_of(
            [BinOp("m", "and", "k", 15)], "m", secret_inputs=("k",)
        )
        assert iv.within(0, 15)

    def test_div_by_positive_constant(self):
        iv = self._bound_of(
            [Const("a", 100), BinOp("d", "div", "a", 3)], "d"
        )
        assert iv == Interval(33, 33)

    def test_select_joins_data_operands(self):
        iv = self._bound_of(
            [Const("a", 2), Const("b", 9), Select("s", "k", "a", "b")],
            "s",
            secret_inputs=("k",),
        )
        assert iv == Interval(2, 9)

    def test_load_is_any_word(self):
        iv = self._bound_of(
            [Load("v", "a", 0)], "v", arrays=(ArrayDecl("a", 4),)
        )
        assert iv == Interval(0, MASK32)


class TestLoops:
    def test_loop_var_bounded_by_trip_count(self):
        program = prog(
            [For("i", 10, (Store("a", "i", 1),))],
            arrays=(ArrayDecl("a", 10),),
        )
        report = analyze_intervals(program)
        store = program.body[0].body[0]
        assert report.index_interval(store) == Interval(0, 9)

    def test_loop_accumulator_widens_but_terminates(self):
        # acc grows every iteration: widening must terminate, bound -> inf
        program = prog(
            [
                Const("acc", 0),
                For("i", 100, (BinOp("acc", "add", "acc", 1),)),
            ]
        )
        report = analyze_intervals(program)
        acc = report.final_env["acc"]
        assert acc.lo == 0  # never shrinks below the initial value

    def test_nested_loops_terminate(self):
        # Widening must converge on nested loops with loop-carried state.
        inner = For("j", 8, (BinOp("x", "add", "x", "j"),))
        program = prog(
            [Const("x", 0), For("i", 8, (inner, BinOp("x", "add", "x", 1)))]
        )
        report = analyze_intervals(program)  # must not hang
        assert report.final_env["x"].lo == 0

    def test_triply_nested_loops_terminate(self):
        body = (BinOp("x", "add", "x", 1),)
        for var in ("k", "j", "i"):
            body = (For(var, 4, body),)
        program = prog([Const("x", 0)] + list(body))
        report = analyze_intervals(program)
        assert report.final_env["x"].lo == 0

    def test_zero_trip_loop_body_unreachable(self):
        program = prog(
            [Const("n", 0), For("i", "n", (Store("a", "i", 1),))],
            arrays=(ArrayDecl("a", 4),),
        )
        report = analyze_intervals(program)
        store = program.body[1].body[0]
        assert id(store) not in report.access_intervals


class TestBuiltinProgramBounds:
    @pytest.mark.parametrize(
        "builder,size",
        [(lookup_program, 64), (swap_program, 32)],
    )
    def test_modded_indices_stay_in_bounds(self, builder, size):
        program, _ = builder(size)
        report = analyze_intervals(program)
        for _, stmt, interval in report.accesses():
            decl = program.array(stmt.array)
            assert interval.within(0, decl.size - 1), (stmt, str(interval))

    def test_histogram_indices_stay_in_bounds(self):
        program, _ = histogram_program(16, 8)
        report = analyze_intervals(program)
        for _, stmt, interval in report.accesses():
            decl = program.array(stmt.array)
            assert interval.within(0, decl.size - 1), (stmt, str(interval))


class TestDSCoverage:
    BASE = 0x40000

    def _lookup(self, size=64):
        program, _ = lookup_program(size)
        access = program.body[1]  # the secret-indexed Load
        return program, access

    def test_full_array_ds_is_covered(self):
        program, access = self._lookup()
        ds = DataflowLinearizationSet.from_range(
            self.BASE, 64 * params.WORD_SIZE, name="table"
        )
        proof = prove_ds_covers(program, access, ds, base=self.BASE)
        assert proof.covered and bool(proof)

    def test_underregistered_ds_names_missing_lines(self):
        program, access = self._lookup()
        # DS registered over only half the array: the upper lines are
        # reachable (index bound [0, 63]) but not covered.
        ds = DataflowLinearizationSet.from_range(
            self.BASE, 32 * params.WORD_SIZE, name="half"
        )
        proof = prove_ds_covers(program, access, ds, base=self.BASE)
        assert not proof.covered
        assert proof.missing_lines, proof.reason
        assert all(
            line >= self.BASE + 32 * params.WORD_SIZE
            for line in proof.missing_lines
        )

    def test_unbounded_index_is_unprovable(self):
        program = Program(
            name="unbounded",
            secret_inputs=("key",),
            arrays=(ArrayDecl("table", 64),),
            body=(Load("out", "table", "key"),),
            outputs=("out",),
        )
        ds = DataflowLinearizationSet.from_range(
            self.BASE, 64 * params.WORD_SIZE, name="table"
        )
        proof = prove_ds_covers(program, program.body[0], ds, base=self.BASE)
        assert not proof.covered
        assert "unbounded" in proof.reason

    def test_access_by_path_string(self):
        program, access = self._lookup()
        ds = DataflowLinearizationSet.from_range(
            self.BASE, 64 * params.WORD_SIZE, name="table"
        )
        proof = prove_ds_covers(program, "body[1]", ds, base=self.BASE)
        assert proof.covered

    def test_non_access_path_rejected(self):
        program, _ = self._lookup()
        ds = DataflowLinearizationSet.from_range(
            self.BASE, 64 * params.WORD_SIZE, name="table"
        )
        with pytest.raises(TypeError):
            prove_ds_covers(program, "body[0]", ds, base=self.BASE)


@st.composite
def interval_leaves(draw, max_value=1 << 16):
    lo = draw(st.integers(min_value=0, max_value=max_value))
    hi = lo + draw(st.integers(min_value=0, max_value=max_value))
    hi = min(hi, max_value)
    return Interval(lo, hi), draw(
        st.integers(min_value=lo, max_value=hi)
    )


@st.composite
def interval_trees(draw, depth=0):
    """A random BinOp tree as (interval, concrete value in it)."""
    if depth >= 3 or draw(st.booleans()):
        return draw(interval_leaves())
    op = draw(st.sampled_from(sorted(ir.OPS)))
    ia, a = draw(interval_trees(depth=depth + 1))
    if op in ("shl", "shr"):
        # Unbounded shift amounts make ``a << b`` intractable; real
        # programs shift by small constants, so bound the RHS.
        ib, b = draw(interval_leaves(max_value=64))
    else:
        ib, b = draw(interval_trees(depth=depth + 1))
    # Mirror the interpreter/executor pipeline: the abstract result
    # and the concrete result are both masked at the register write.
    iv = _binop_interval(op, ia, ib).masked()
    value = ir.OPS[op][0](a, b) & MASK32
    return iv, value


class TestTransferSoundness:
    @settings(max_examples=300, deadline=None)
    @given(interval_trees())
    def test_concrete_results_stay_inside_abstract_bounds(self, tree):
        interval, value = tree
        assert interval.contains(value), (interval, value)


class TestForCountIntervals:
    def test_symbolic_trip_count_is_recorded(self):
        program = prog(
            [
                BinOp("m", "and", "n", 7),
                For("i", "m", (Const("x", 1),)),
            ],
            inputs=("n",),
        )
        report = analyze_intervals(program)
        interval = report.trip_count_interval(program.body[1])
        assert interval.within(0, 7)

    def test_zero_trip_loop_still_recorded(self):
        program = prog(
            [Const("n", 0), For("i", "n", (Const("x", 1),))]
        )
        report = analyze_intervals(program)
        interval = report.trip_count_interval(program.body[1])
        assert interval == Interval(0, 0)

    def test_unvisited_statement_raises(self):
        program = prog([Const("x", 1)])
        report = analyze_intervals(program)
        with pytest.raises(KeyError):
            report.trip_count_interval(For("i", 4, ()))


class TestBranchJoin:
    def test_if_joins_both_sides(self):
        program = prog(
            [
                If(
                    "p",
                    then_body=(Const("x", 1),),
                    else_body=(Const("x", 10),),
                )
            ],
            inputs=("p",),
        )
        report = analyze_intervals(program)
        assert report.final_env["x"] == Interval(1, 10)
