"""Relational sanitizer: leaks flagged, mitigations proven clean."""

import pytest

from repro.analysis.sanitizer import (
    SanitizerReport,
    TraceDivergence,
    sanitize,
    sanitize_program,
    sanitize_workload,
)
from repro.lang.programs import lookup_program

SIZE = 64
# Far enough apart to land on different cache lines.
SECRETS = (1, 33)


def lookup_inputs(secret):
    return {"key": secret}, {"table": list(range(SIZE))}


class TestSanitizeProgram:
    def test_insecure_lookup_leaks(self):
        program, _ = lookup_program(SIZE)
        report = sanitize_program(
            program,
            lookup_inputs,
            scheme="insecure",
            mitigate=False,
            secrets=SECRETS,
        )
        assert not report.clean
        assert not bool(report)
        kinds = {d.kind for d in report.divergences}
        assert kinds & {"event-trace", "set-profile"}

    def test_mitigated_lookup_is_clean(self):
        program, _ = lookup_program(SIZE)
        report = sanitize_program(
            program,
            lookup_inputs,
            scheme="bia-l1d",
            mitigate=True,
            secrets=SECRETS,
        )
        assert report.clean, report.describe()
        assert bool(report)

    def test_results_are_functionally_correct(self):
        # The sanitizer must not perturb program semantics.
        program, reference = lookup_program(SIZE)
        report = sanitize_program(
            program,
            lookup_inputs,
            scheme="bia-l1d",
            mitigate=True,
            secrets=SECRETS,
        )
        for obs in report.observations:
            inputs, arrays = lookup_inputs(obs.secret)
            assert obs.result["out"] == reference(inputs, arrays)["out"]


class TestSanitizeWorkload:
    """The acceptance pair: binary search insecure vs BIA-mitigated."""

    def test_insecure_binary_search_is_flagged(self):
        report = sanitize_workload(
            "binary_search", 256, "insecure", secrets=(1, 2)
        )
        assert not report.clean
        assert any(
            d.kind in ("event-trace", "event-count")
            for d in report.divergences
        ), report.describe()

    def test_bia_binary_search_is_clean(self):
        report = sanitize_workload(
            "binary_search", 256, "bia-l1d", secrets=(1, 2)
        )
        assert report.clean, report.describe()

    def test_deterministic_across_repeats(self):
        # Same seeds, fresh machines: the verdict must not flap.
        verdicts = [
            sanitize_workload(
                "binary_search", 256, "insecure", secrets=(1, 2)
            ).clean
            for _ in range(2)
        ]
        assert verdicts == [False, False]


class TestCoreAPI:
    def test_rejects_fewer_than_two_secrets(self):
        program, _ = lookup_program(SIZE)
        with pytest.raises(ValueError):
            sanitize_program(program, lookup_inputs, secrets=(1,))

    def test_three_secrets_compare_against_first(self):
        program, _ = lookup_program(SIZE)
        report = sanitize_program(
            program,
            lookup_inputs,
            scheme="insecure",
            mitigate=False,
            secrets=(1, 17, 33),
        )
        assert len(report.observations) == 3
        pairs = {d.secrets for d in report.divergences}
        assert all(pair[0] == 1 for pair in pairs)

    def test_cycles_property_and_describe(self):
        program, _ = lookup_program(SIZE)
        report = sanitize_program(
            program, lookup_inputs, scheme="bia-l1d", secrets=SECRETS
        )
        assert set(report.cycles) == set(SECRETS)
        assert "clean" in report.describe()

    def test_dirty_describe_names_divergence(self):
        report = SanitizerReport(secrets=(1, 2), levels=("L1D",))
        report.divergences.append(
            TraceDivergence(
                kind="event-trace",
                secrets=(1, 2),
                detail="x != y",
                index=7,
            )
        )
        text = report.describe()
        assert "VIOLATION" in text
        assert "at event 7" in text

    def test_check_cycles_flag_suppresses_cycle_divergence(self):
        # A run_fn whose only difference is timing: with cycle checking
        # off the report is clean, with it on it is not.
        from repro.experiments.config import build_context

        def run_fn(ctx, secret):
            machine = ctx.machine
            for i in range(int(secret)):
                machine.load_word(0x9000 + 64 * (i % 4))

        factory = lambda: build_context("insecure")  # noqa: E731
        loud = sanitize(factory, run_fn, secrets=(4, 8))
        assert not loud.clean
        quiet_kinds = {
            d.kind
            for d in sanitize(
                factory, run_fn, secrets=(4, 8), check_cycles=False
            ).divergences
        }
        assert "cycles" not in quiet_kinds
