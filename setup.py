"""Legacy setup shim.

The offline CI image lacks the ``wheel`` package, so PEP-660 editable
installs fail; with this file (and no ``[build-system]`` table in
pyproject.toml) ``pip install -e .`` takes the classic setuptools
``develop`` path, which needs nothing beyond setuptools itself.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Hardware Support for Constant-Time Programming' "
        "(MICRO 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
