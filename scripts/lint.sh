#!/usr/bin/env bash
# One entry point for both lints:
#   * the repo's own style lint (ruff, when installed — config lives in
#     pyproject.toml [tool.ruff]); skipped gracefully offline;
#   * the domain lint: `python -m repro ctcheck --all`, the
#     constant-time checker over every built-in IR program and every
#     workload's registered dataflow linearization sets (exits 1 on
#     error-severity findings such as DS-COVERAGE).
#
# The symbolic relational checker is NOT part of the default gate here
# (its CT-REL findings for the intentionally-leaky native builtins
# exit 1 by design); run it explicitly with
#   scripts/lint.sh --symbolic --spec-window 2
# or assert the expected verdict matrix with scripts/symrel_smoke.py.
#
# Usage: scripts/lint.sh [extra ctcheck args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check"
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping style lint"
fi

echo "== python -m repro ctcheck --all"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro ctcheck --all "$@"
