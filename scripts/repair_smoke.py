#!/usr/bin/env python
"""CI smoke for the automatic repair pipeline.

Runs :func:`repro.analysis.repair.repair_program` over every built-in
IR program and asserts the full contract:

* every program repairs to **CT-PROVED** (sequential *and* speculative,
  window 2) — a residual ``CT-REL`` is a gate failure;
* the repaired program's cycle cost stays within ``MAX_OVERHEAD_RATIO``
  of the executor's on-the-fly (hand-mitigated) run;
* the emitted DS declarations lint clean: no error-severity findings
  on the repaired program when checked against exactly the coverage
  claims the driver proved.

Exit code 0 iff every program passes.  Run from the repo root:
``PYTHONPATH=src python scripts/repair_smoke.py``.
"""

import sys

from repro.analysis.api import BUILTIN_PROGRAM_SPECS
from repro.analysis.ctlint import lint
from repro.analysis.repair import repair_program

SPEC_WINDOW = 2
MAX_OVERHEAD_RATIO = 1.5


def main() -> int:
    failures = []
    for name in sorted(BUILTIN_PROGRAM_SPECS):
        program = BUILTIN_PROGRAM_SPECS[name]()
        result = repair_program(program, spec_window=SPEC_WINDOW)

        if not result.proved:
            failures.append(
                f"{name}: expected proved, got {result.verdict}"
                + (f" ({result.reason})" if result.reason else "")
            )
            print(f"  {name:20s} {result.summary()}")
            continue

        ratio = result.overhead.vs_manual if result.overhead else 1.0
        if ratio > MAX_OVERHEAD_RATIO:
            failures.append(
                f"{name}: repaired/manual cycle ratio {ratio:.2f} "
                f"exceeds {MAX_OVERHEAD_RATIO}"
            )

        errors = [
            f
            for f in lint(result.repaired, ds_map=result.ds_declarations)
            if f.severity == "error"
        ]
        if errors:
            failures.append(
                f"{name}: repaired program has lint errors: "
                + "; ".join(f.rule for f in errors)
            )

        print(f"  {name:20s} {result.summary()}")

    if failures:
        print("repair smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"repair smoke passed: {len(BUILTIN_PROGRAM_SPECS)} program(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
