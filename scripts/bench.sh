#!/usr/bin/env bash
# One entry point for the performance measurements:
#   * the raw hot-path throughput (loads/s, CTLoads/s) -> BENCH_hotpath.json
#   * the bulk DS-sweep kernels + fork-based sanitizer -> BENCH_sweep.json
#   * the parallel/cached verification engine          -> BENCH_analysis.json
#
# Both reports carry their seed baselines, so the speedup ratios stay
# visible; the perf-marked pytest wrappers in benchmarks/ assert the
# same floors in CI form (`pytest benchmarks/ -m perf --benchmark-only`).
#
# Usage: scripts/bench.sh [--repeats N]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== hot-path throughput (BENCH_hotpath.json)"
python benchmarks/bench_simulator_hotpath.py

echo "== bulk DS-sweep kernels + warm-start sanitizer (BENCH_sweep.json)"
python -m repro bench --write "$@"

echo "== parallel/cached verification engine (BENCH_analysis.json)"
python benchmarks/bench_analysis_pipeline.py
