#!/usr/bin/env python
"""CI smoke for the symbolic relational checker.

``ctcheck --symbolic`` exits 1 whenever a *native* variant leaks —
which is true for almost every builtin by design — so the plain exit
code cannot gate CI.  This script asserts the *expected verdict
matrix* instead:

* every builtin's mitigated variant is **proved** (sequentially and
  speculatively);
* every builtin whose native variant is expected to leak is **refuted**
  with a concrete secret pair whose sanitizer replay confirms a
  nonempty trace diff;
* ``speculative_lookup`` is the spec-gap witness: native variant
  proved sequentially, refuted only by the speculative pass.

Exit code 0 iff the whole matrix holds.  Run from the repo root:
``PYTHONPATH=src python scripts/symrel_smoke.py``.
"""

import sys

from repro.analysis.api import BUILTIN_PROGRAM_SPECS
from repro.analysis.symrel import check_program_relational

#: builtins whose native variant is sequentially constant-time (the
#: leak, if any, is speculative-only).
SEQUENTIALLY_SAFE = {"speculative_lookup"}

SPEC_WINDOW = 2


def main() -> int:
    failures = []
    for name in sorted(BUILTIN_PROGRAM_SPECS):
        program = BUILTIN_PROGRAM_SPECS[name]()

        native = check_program_relational(
            program, mitigate=False, spec_window=SPEC_WINDOW, replay=True
        )
        if name in SEQUENTIALLY_SAFE:
            if native.verdict != "proved":
                failures.append(
                    f"{name}: native expected proved, got {native.verdict}"
                )
            if native.spec_verdict != "refuted":
                failures.append(
                    f"{name}: native speculative pass expected refuted, "
                    f"got {native.spec_verdict}"
                )
        else:
            if native.verdict != "refuted":
                failures.append(
                    f"{name}: native expected refuted, got {native.verdict}"
                )
            elif native.replay is None or not native.replay.confirmed:
                failures.append(
                    f"{name}: counterexample replay did not confirm "
                    f"({native.replay.describe() if native.replay else 'no replay'})"
                )

        mitigated = check_program_relational(
            program, mitigate=True, spec_window=SPEC_WINDOW, replay=False
        )
        if mitigated.verdict != "proved":
            failures.append(
                f"{name}: mitigated expected proved, got {mitigated.verdict}"
            )
        if mitigated.spec_verdict != "proved":
            failures.append(
                f"{name}: mitigated speculative pass expected proved, "
                f"got {mitigated.spec_verdict}"
            )
        print(
            f"  {name:20s} native={native.verdict}"
            + (
                f"/spec:{native.spec_verdict}"
                if native.spec_verdict is not None
                else ""
            )
            + f" mitigated={mitigated.verdict}"
            + (
                " replay=confirmed"
                if native.replay is not None and native.replay.confirmed
                else ""
            )
        )
    if failures:
        print("symrel smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"symrel smoke passed: {len(BUILTIN_PROGRAM_SPECS)} program(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
