#!/usr/bin/env bash
# The one-command CI gate: everything a PR must pass, in the order
# that fails fastest.
#   1. style lint (ruff, when installed; config in pyproject.toml)
#   2. tier-1 test suite (pytest tests/ — includes the fault-injection
#      resilience tests and the crash/resume store tests)
#   3. the domain lint: `python -m repro ctcheck --all --jobs 2` — the
#      constant-time checker over every built-in IR program and every
#      workload's registered DS linearization sets (exits 1 on
#      error-severity findings), fanned across the verification
#      engine's worker pool and populating a verdict cache; a second
#      warm pass must then serve every target from the cache
#      (re-checking anything means the content-addressed keys or the
#      cache round-trip regressed)
#   4. the symbolic relational smoke (scripts/symrel_smoke.py):
#      every builtin's native variant must be refuted with a
#      replay-confirmed secret pair (or, for the speculative fixture,
#      refuted only by the speculative pass) and every mitigated
#      variant proved
#   5. the automatic repair smoke (scripts/repair_smoke.py): every
#      leaky builtin must auto-repair to CT-PROVED within the 1.5x
#      overhead budget — a residual CT-REL exits nonzero
#   6. a perf sanity pass: `python -m repro bench --repeats 1` (single
#      repeat — a smoke that the measured hot paths still run, not a
#      stable throughput number; scripts/bench.sh records those)
#
# Usage: scripts/ci.sh [extra pytest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check"
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping style lint"
fi

echo "== tier-1 tests (pytest tests/)"
python -m pytest tests/ -q "$@"

echo "== constant-time check (python -m repro ctcheck --all --jobs 2)"
VCACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$VCACHE_DIR"' EXIT
python -m repro ctcheck --all --jobs 2 --vcache "$VCACHE_DIR"

echo "== ctcheck warm verdict-cache pass (must re-check nothing)"
warm_err="$(python -m repro ctcheck --all --vcache "$VCACHE_DIR" 2>&1 >/dev/null)"
echo "$warm_err"
grep -q "0 target(s) checked" <<<"$warm_err"

echo "== symbolic relational smoke (scripts/symrel_smoke.py)"
python scripts/symrel_smoke.py

echo "== automatic repair smoke (scripts/repair_smoke.py)"
python scripts/repair_smoke.py

echo "== perf smoke (python -m repro bench --repeats 1)"
python -m repro bench --repeats 1

echo "== CI gate passed"
