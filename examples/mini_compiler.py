#!/usr/bin/env python3
"""The toolchain layer: automatic constant-time transformation.

The paper integrates its instructions into Constantine, an LLVM pass.
This demo shows the library's miniature of that pipeline: a program
written once in a tiny IR, taint-analysed to find its secret branch
and secret-indexed accesses, then executed

* natively (insecure),
* transformed against software CT sweeps, and
* transformed against the BIA hardware,

with identical outputs and the expected cost ordering.

Run:  python examples/mini_compiler.py
"""

from repro.core.machine import Machine, MachineConfig
from repro.ct import BIAContext, InsecureContext, SoftwareCTContext
from repro.experiments import format_table
from repro.lang import analyze, demo_inputs, dump, histogram_program, run_program


def main() -> None:
    program, reference = histogram_program(bins=512, n=32)
    inputs, arrays = demo_inputs("histogram", 32, seed=1)

    report = analyze(program)
    print(dump(program, report))
    print()
    print(f"program: {program.name!r}")
    print(f"  secret branches found      : {len(report.secret_branches)}")
    print(f"  secret-indexed arrays      : {sorted(report.secret_indexed_arrays)}")
    print(f"  tainted registers          : {sorted(report.tainted_regs)}\n")

    expected = reference(inputs, arrays)
    rows = []
    base = None
    for label, ctx_cls, mitigate in (
        ("native (insecure)", InsecureContext, False),
        ("transformed + software CT", SoftwareCTContext, True),
        ("transformed + BIA (L1d)", BIAContext, True),
    ):
        machine = Machine(MachineConfig())
        out = run_program(
            program, ctx_cls(machine), inputs, arrays, mitigate=mitigate
        )
        assert out == expected, label
        cycles = machine.stats.cycles
        if base is None:
            base = cycles
        rows.append((label, cycles, cycles / base))

    print(
        format_table(
            ["execution", "cycles", "overhead"],
            rows,
            title="histogram IR program, 512 bins, 32 secret values",
        )
    )
    print("\nAll three executions produced identical bin counts.")


if __name__ == "__main__":
    main()
