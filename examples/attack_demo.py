#!/usr/bin/env python3
"""Prime+Probe end to end: steal a secret, then fail against the BIA.

Algorithm 1 of the paper: the attacker primes every L1d set, lets the
victim perform ONE secret-indexed table update, then probes.  A probe
miss marks the set the victim touched — which pins down the secret
index to within a cache line.

Against the insecure victim the attack recovers the secret's set every
time; against the software-CT and BIA victims every round looks
identical regardless of the secret.

Run:  python examples/attack_demo.py
"""

from repro import params
from repro.attacks import PrimeProbeAttacker
from repro.core.machine import Machine, MachineConfig
from repro.ct import BIAContext, InsecureContext, SoftwareCTContext


def run_round(make_ctx, secret_bin: int):
    """One Prime+Probe round against one histogram-style update."""
    machine = Machine(MachineConfig(l1d_size=4 * 1024, l1d_assoc=2))
    ctx = make_ctx(machine)
    bins = machine.allocator.alloc_words(512)
    for i in range(512):
        machine.memory.write_word(bins + 4 * i, 0)
    ds = ctx.register_ds(bins, 2048, "bins")

    attacker = PrimeProbeAttacker(machine, "L1D")
    result = attacker.attack(
        lambda: ctx.rmw(ds, bins + 4 * secret_bin, lambda v: v + 1),
        sets=range(machine.l1d.num_sets),
    )
    return result.touched_sets()


def main() -> None:
    secrets = (16, 100, 400)
    for name, make_ctx in (
        ("insecure", InsecureContext),
        ("software CT", lambda m: SoftwareCTContext(m)),
        ("BIA (ours)", BIAContext),
    ):
        print(f"victim: {name}")
        seen = set()
        for secret in secrets:
            touched = run_round(make_ctx, secret)
            seen.add(tuple(touched))
            shown = touched if len(touched) <= 8 else f"{len(touched)} sets"
            expected_set = (secret * 4) // params.LINE_SIZE % 32
            print(
                f"  secret bin {secret:>3} (line maps to set {expected_set:>2})"
                f" -> probe misses in: {shown}"
            )
        verdict = "LEAKED" if len(seen) == len(secrets) else "no leak"
        print(f"  attacker's verdict: {verdict}\n")


if __name__ == "__main__":
    main()
