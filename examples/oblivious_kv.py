#!/usr/bin/env python3
"""An oblivious key-value store: the intro's cloud scenario, end to end.

A multi-tenant service looks up client records; *which* record is
queried is the secret (think medical-record IDs on shared hardware).
The store performs every query through a mitigation context — swap
the context, swap the defence.

The demo measures query cost under each scheme and then verifies the
headline property directly: under the BIA, two different secret
queries leave byte-identical observable cache traces.

Run:  python examples/oblivious_kv.py
"""

from repro.attacks.observer import ObservableTraceRecorder
from repro.core.machine import Machine, MachineConfig
from repro.ct import BIAContext, InsecureContext, SoftwareCTContext
from repro.experiments import format_table
from repro.workloads.kvstore import build_demo_store

N_RECORDS = 2000
N_QUERIES = 10


def measure(ctx_cls):
    machine = Machine(MachineConfig())
    store, pairs = build_demo_store(ctx_cls(machine), N_RECORDS)
    queried = [pairs[i][0] for i in range(0, N_RECORDS, N_RECORDS // N_QUERIES)]
    machine.reset_stats()
    results = store.get_many(queried[:N_QUERIES])
    expected = [
        dict(pairs)[key] for key in queried[:N_QUERIES]
    ]
    assert results == expected
    return machine.stats.cycles


def trace_of_query(query_index: int) -> str:
    machine = Machine(MachineConfig())
    store, pairs = build_demo_store(BIAContext(machine), N_RECORDS)
    recorder = ObservableTraceRecorder()
    for level in machine.hierarchy.levels:
        recorder.attach(level)
    store.get(pairs[query_index][0])
    return recorder.digest()


def main() -> None:
    rows = []
    base = None
    for name, ctx_cls in (
        ("insecure", InsecureContext),
        ("software CT", SoftwareCTContext),
        ("BIA (ours)", BIAContext),
    ):
        cycles = measure(ctx_cls)
        if base is None:
            base = cycles
        rows.append((name, cycles / N_QUERIES, cycles / base))
    print(
        format_table(
            ["scheme", "cycles / query", "overhead"],
            rows,
            title=f"oblivious KV store: {N_RECORDS} records, {N_QUERIES} queries",
        )
    )

    digest_a = trace_of_query(17)
    digest_b = trace_of_query(1776)
    print(
        "\nobservable-trace digests for two different secret queries:\n"
        f"  record #17   -> {digest_a[:32]}...\n"
        f"  record #1776 -> {digest_b[:32]}...\n"
        f"  identical    -> {digest_a == digest_b}"
    )


if __name__ == "__main__":
    main()
