#!/usr/bin/env python3
"""Constant-time AES-128 on the simulated machine.

Runs the library's real one-T-table AES (validated against FIPS-197)
with every T-table/S-box lookup routed through a mitigation context,
and compares the cost of software CT vs the BIA — one bar pair of
Figure 9.  Crypto tables are tiny (the whole T-table fits one BIA
entry), which is exactly the regime where the paper says software CT
remains competitive (Sec. 6.3).

Run:  python examples/aes_ttable.py
"""

from repro.experiments import build_context, format_table
from repro.workloads.crypto import AES_BLOCKS, run_aes


def main() -> None:
    rows = []
    outputs = set()
    base = None
    for scheme in ("insecure", "ct", "bia-l1d"):
        ctx = build_context(scheme)
        ciphertext = run_aes(ctx, seed=1)
        outputs.add(ciphertext)
        cycles = ctx.machine.stats.cycles
        if base is None:
            base = cycles
        rows.append((scheme, cycles, cycles / base))
    assert len(outputs) == 1, "every scheme must encrypt identically"
    print(
        format_table(
            ["scheme", "cycles", "overhead"],
            rows,
            title=f"AES-128, {AES_BLOCKS} blocks, one-T-table formulation",
        )
    )
    print(f"\nciphertext: {outputs.pop().hex()}")
    print("(identical under every mitigation — functional proof of Sec. 5.2)")


if __name__ == "__main__":
    main()
