#!/usr/bin/env python3
"""Where should the BIA live?  The Sec. 7.3.2 crossover, interactively.

Sweeps dijkstra's vertex count and prints the L1d-BIA vs L2-BIA
overheads.  At V=128 the 64 KiB weight matrix equals the L1d capacity:
the L1d-resident BIA starts losing fetch passes to self-eviction while
the L2-resident BIA (bypassing the L1) keeps the whole DS resident —
the one configuration in Figure 7 where L2 beats L1d.

Run:  python examples/l1_vs_l2_bia.py
"""

from repro.experiments import build_context, format_table
from repro.workloads import WORKLOADS


def main() -> None:
    workload = WORKLOADS["dijkstra"]
    rows = []
    for size in workload.sizes:
        overheads = {}
        base = None
        for scheme in ("insecure", "bia-l1d", "bia-l2"):
            ctx = build_context(scheme)
            workload.run(ctx, size, seed=1)
            cycles = ctx.machine.stats.cycles
            if base is None:
                base = cycles
            overheads[scheme] = cycles / base
        ds_kib = size * size * 4 // 1024
        winner = (
            "L2" if overheads["bia-l2"] < overheads["bia-l1d"] else "L1d"
        )
        rows.append(
            (
                workload.label(size),
                f"{ds_kib} KiB",
                overheads["bia-l1d"],
                overheads["bia-l2"],
                winner,
            )
        )
    print(
        format_table(
            ["workload", "DS size", "L1d BIA", "L2 BIA", "winner"],
            rows,
            title="L1d-resident vs L2-resident BIA (dijkstra)",
        )
    )
    print("\nThe L2 BIA wins exactly when the DS stops fitting in the L1d.")


if __name__ == "__main__":
    main()
