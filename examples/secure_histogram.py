#!/usr/bin/env python3
"""The paper's running example: histogram under every mitigation.

Runs the histogram workload (Sec. 2.3/3.1) at a chosen bin count under
the insecure baseline, software constant-time programming (scalar and
avx2-style), and the BIA design (L1d- and L2-resident), then prints
the execution-time overheads — one row of Figure 7(b).

Run:  python examples/secure_histogram.py [bins]
"""

import sys

from repro.experiments import build_context, format_table
from repro.workloads import WORKLOADS


def main() -> None:
    bins = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    workload = WORKLOADS["histogram"]

    rows = []
    base_cycles = None
    for scheme in ("insecure", "ct-scalar", "ct", "bia-l1d", "bia-l2"):
        ctx = build_context(scheme)
        output = workload.run(ctx, bins, seed=1)
        cycles = ctx.machine.stats.cycles
        if base_cycles is None:
            base_cycles = cycles
        rows.append(
            (
                scheme,
                cycles,
                cycles / base_cycles,
                ctx.machine.stats.l1d_refs,
            )
        )
        checksum = sum(output)
    print(
        format_table(
            ["scheme", "cycles", "overhead", "L1d refs"],
            rows,
            title=f"histogram with {bins} bins ({workload.label(bins)})",
        )
    )
    print(f"\n(bin-count checksum: {checksum} — identical for every scheme)")


if __name__ == "__main__":
    main()
