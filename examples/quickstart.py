#!/usr/bin/env python3
"""Quickstart: protect one secret-indexed table lookup with the BIA.

Builds the paper's Table-1 machine, registers a dataflow
linearization set over a lookup table, and performs a secure load and
a secure store through Algorithms 2 and 3 (CTLoad/CTStore).  Prints
the machine counters so you can see what the mitigation actually
cost.

Run:  python examples/quickstart.py
"""

from repro import BIAContext, build_machine

def main() -> None:
    # A Table-1 machine with the BIA attached to the L1d cache.
    machine = build_machine("L1D")
    ctx = BIAContext(machine)

    # A 1000-entry table of secrets-to-be-protected (4 KB = 1 page).
    table = machine.allocator.alloc_words(1000, "table")
    for i in range(1000):
        machine.memory.write_word(table + 4 * i, i * i)

    # Every possible address of the secret-indexed access forms its
    # dataflow linearization set (Sec. 2.3).
    ds = ctx.register_ds(table, 1000 * 4, name="table")

    secret_index = 421  # pretend this came from a key
    value = ctx.load(ds, table + 4 * secret_index)
    print(f"secure load : table[{secret_index}] = {value}")

    ctx.store(ds, table + 4 * secret_index, 7)
    print(f"secure store: table[{secret_index}] <- 7")
    print(f"read back   : {ctx.load(ds, table + 4 * secret_index)}")

    stats = machine.stats
    print("\nmachine counters:")
    print(f"  instructions : {stats.insts}")
    print(f"  L1d refs     : {stats.l1d_refs}")
    print(f"  CTLoad ops   : {stats.ct_loads}")
    print(f"  CTStore ops  : {stats.ct_stores}")
    print(f"  cycles       : {stats.cycles:.0f}")


if __name__ == "__main__":
    main()
